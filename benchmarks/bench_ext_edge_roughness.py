"""Extension: edge-roughness defects (the paper's reference [17]).

Section 4 lists edge roughness as a defect mechanism and defers it to
"future studies ... by readily extending the bottom-up simulation
framework presented here".  This bench is that study, in the real-space
p_z basis (roughness mixes transverse modes).  Assertions:

* transmission degrades monotonically with roughness probability;
* at equal roughness, the narrow N=9 ribbon degrades more than N=18
  (roughness compounds the width-variability problem);
* roughness produces a finite localization length and widens the
  transport gap beyond the structural band gap.
"""

from repro.characterize.specs import extract_ext_roughness
from repro.reporting.tables import format_table
from repro.variability.edge_roughness import (
    effective_gap_widening_ev,
    localization_length_cells,
    roughness_width_study,
)


def test_edge_roughness_study(benchmark, save_report):
    def run():
        study = roughness_width_study(indices=(9, 12, 18),
                                      probabilities=(0.02, 0.05, 0.1),
                                      n_cells=24, n_samples=10)
        xi, _ = localization_length_cells(9, 0.1,
                                          lengths_cells=(8, 16, 24, 32),
                                          n_samples=8)
        widening = effective_gap_widening_ev(9, 0.1, n_cells=24,
                                             n_samples=6)
        return study, xi, widening

    study, xi, widening = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (n, p), stats in sorted(study.items()):
        rows.append([f"N={n}", f"{p:.2f}",
                     f"{stats.mean_transmission:.3f}",
                     f"{stats.std_transmission:.3f}",
                     f"{stats.mean_removed_atoms:.1f}"])
    report = format_table(
        ["ribbon", "p_vacancy", "<T>", "std T", "<removed atoms>"], rows,
        title="Edge roughness: first-plateau transmission (24-cell, "
              "10-sample ensembles)")
    report += (f"\n\nN=9 @ p=0.1: localization length ~ {xi:.0f} cells "
               f"({xi * 0.426:.1f} nm); transport-gap widening "
               f"~ {widening * 1e3:.0f} meV")
    save_report("ext_edge_roughness", report)

    # Monotone degradation with p for every width.
    for n in (9, 12, 18):
        t_vals = [study[(n, p)].mean_transmission
                  for p in (0.02, 0.05, 0.1)]
        assert t_vals[0] > t_vals[1] > t_vals[2]

    # Narrow ribbons suffer more at p = 0.1.
    fom = extract_ext_roughness({"study": study})
    assert fom["t_n9_p01"] < fom["t_n12_p01"] < fom["t_n18_p01"] + 0.05
    assert fom["t_n9_p005"] < fom["t_n18_p005"] + 0.05

    # Finite localization and transport-gap widening.
    assert 2.0 < xi < 500.0
    assert widening > 0.02
