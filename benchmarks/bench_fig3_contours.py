"""Figure 3(b): EDP / frequency / SNM contours over the (V_T, V_DD) plane.

Paper anchors asserted:
* the global EDP optimum sits at an interior point of the plane at a low
  frequency (paper: V_DD ~ 0.15, V_T ~ 0.08);
* point A (minimum EDP at 3 GHz) has a *lower* SNM than point B (which
  adds the SNM floor) and a lower or equal EDP;
* point B runs at >= 3 GHz with the SNM floor met;
* EDP and frequency contours exist at multiple levels (non-degenerate
  landscape).
"""

from repro.reporting.experiments import run_fig3


def test_fig3_exploration_contours(benchmark, tech, save_report):
    report, data = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_report("fig3", report)

    grid = data["grid"]
    optimum = data["optimum"]
    point_a = data["A"]
    point_b = data["B"]

    # Interior optimum (not clamped to the grid boundary).
    assert grid.vt[0] < optimum.vt < grid.vt[-1]
    assert grid.vdd[0] < optimum.vdd < grid.vdd[-1]

    # The global optimum is slower than the 3 GHz design points.
    assert optimum.frequency_hz < point_a.frequency_hz

    # A meets the frequency floor with minimal EDP; B pays EDP for SNM.
    assert point_a.frequency_hz >= 3e9
    assert point_b.frequency_hz >= 3e9
    assert point_b.snm_v >= data["snm_floor"] - 1e-9
    assert point_b.snm_v >= point_a.snm_v
    assert point_b.edp_j_s >= point_a.edp_j_s

    # Non-degenerate contour sets.
    non_empty_edp = sum(1 for segs in data["edp_contours"].values() if segs)
    assert non_empty_edp >= 4
    assert data["frequency_contours"]["f=3GHz"]
