"""Figure 3(b): EDP / frequency / SNM contours over the (V_T, V_DD) plane.

Paper anchors asserted:
* the global EDP optimum sits at an interior point of the plane at a low
  frequency (paper: V_DD ~ 0.15, V_T ~ 0.08);
* point A (minimum EDP at 3 GHz) has a *lower* SNM than point B (which
  adds the SNM floor) and a lower or equal EDP;
* point B runs at >= 3 GHz with the SNM floor met;
* EDP and frequency contours exist at multiple levels (non-degenerate
  landscape).
"""

from repro.characterize.specs import extract_fig3
from repro.reporting.experiments import run_fig3


def test_fig3_exploration_contours(benchmark, tech, save_report):
    report, data = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_report("fig3", report)

    grid = data["grid"]
    point_a = data["A"]
    point_b = data["B"]
    fom = extract_fig3(data)

    # Interior optimum (not clamped to the grid boundary).
    assert grid.vt[0] < fom["opt_vt_v"] < grid.vt[-1]
    assert grid.vdd[0] < fom["opt_vdd_v"] < grid.vdd[-1]

    # The global optimum is slower than the 3 GHz design points.
    assert fom["opt_frequency_ghz"] * 1e9 < point_a.frequency_hz

    # A meets the frequency floor with minimal EDP; B pays EDP for SNM.
    assert point_a.frequency_hz >= 3e9
    assert point_b.frequency_hz >= 3e9
    assert fom["b_snm_v"] >= data["snm_floor"] - 1e-9
    assert fom["b_snm_v"] >= fom["a_snm_v"]
    assert fom["edp_b_over_a"] >= 1.0

    # Non-degenerate contour sets.
    non_empty_edp = sum(1 for segs in data["edp_contours"].values() if segs)
    assert non_empty_edp >= 4
    assert data["frequency_contours"]["f=3GHz"]
