"""Ablation: the paper's extrinsic parasitic ranges.

Fig. 3(a) annotates ranges for the contact resistance (1-100 kOhm,
nominal 10 kOhm) and the parasitic junction capacitance (0.01-0.1 aF/nm).
This bench sweeps both across the stated ranges and records their impact
on the nominal FO4 inverter delay and ring-oscillator frequency.

Assertions (directional):

* delay increases monotonically with contact resistance and with
  parasitic capacitance;
* at 100 kOhm the contact resistance visibly degrades the drive
  (> 15% delay penalty vs 1 kOhm);
* the parasitic-capacitance range moves delay by a bounded amount
  (< 2x: the load is dominated by gate + wire capacitance, consistent
  with the paper treating these as secondary knobs).
"""

from dataclasses import replace

from repro.circuit.ring_oscillator import estimate_ring_oscillator
from repro.reporting.tables import format_table


def test_contact_resistance_sweep(benchmark, tech, save_report):
    def run():
        rows = []
        delays = []
        for r_ohm in (1e3, 3e3, 10e3, 30e3, 100e3):
            params = replace(tech.params, contact_resistance_ohm=r_ohm)
            nt, pt = tech.inverter_tables(0.13)
            m = estimate_ring_oscillator(nt, pt, 0.4, 15, params)
            delays.append(m.stage_delay_s)
            rows.append([f"{r_ohm / 1e3:.0f}k",
                         f"{m.stage_delay_s * 1e12:.2f}",
                         f"{m.frequency_hz / 1e9:.2f}"])
        return rows, delays

    rows, delays = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_contact_resistance", format_table(
        ["R_contact", "stage delay (ps)", "f (GHz)"], rows,
        title="Contact-resistance sweep (paper range 1-100 kOhm)"))

    assert all(a < b for a, b in zip(delays, delays[1:]))
    assert delays[-1] > 1.15 * delays[0]


def test_parasitic_capacitance_sweep(benchmark, tech, save_report):
    def run():
        rows = []
        delays = []
        for c_af in (0.01, 0.03, 0.05, 0.1):
            params = replace(tech.params, c_parasitic_af_per_nm=c_af)
            nt, pt = tech.inverter_tables(0.13)
            m = estimate_ring_oscillator(nt, pt, 0.4, 15, params)
            delays.append(m.stage_delay_s)
            rows.append([f"{c_af:.2f}",
                         f"{m.stage_delay_s * 1e12:.2f}",
                         f"{m.frequency_hz / 1e9:.2f}",
                         f"{m.edp_j_s * 1e27:.1f}"])
        return rows, delays

    rows, delays = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_parasitic_capacitance", format_table(
        ["C_par (aF/nm)", "stage delay (ps)", "f (GHz)", "EDP (fJ-ps)"],
        rows, title="Junction-capacitance sweep (paper range 0.01-0.1)"))

    assert all(a <= b for a, b in zip(delays, delays[1:]))
    assert delays[-1] < 2.0 * delays[0]


def test_pitch_and_ribbon_count(benchmark, tech, save_report):
    """Array-width knob: more ribbons add drive, gate load AND contact
    parasitics in proportion, so frequency is nearly size-invariant
    while power scales with the array - the reason the paper can study
    per-ribbon anomalies at a fixed 4-ribbon design without the array
    size itself being a performance lever."""

    def run():
        rows = []
        freqs = []
        powers = []
        for n_ribbons in (2, 4, 8):
            params = replace(tech.params, n_ribbons=n_ribbons,
                             contact_width_nm=10.0 * n_ribbons)
            table = (tech.ribbon_table.scaled(n_ribbons)
                     .with_gate_offset(tech.gate_offset_for_vt(0.13)))
            m = estimate_ring_oscillator(table, table, 0.4, 15, params)
            freqs.append(m.frequency_hz)
            powers.append(m.total_power_w)
            rows.append([str(n_ribbons),
                         f"{m.frequency_hz / 1e9:.2f}",
                         f"{m.total_power_w * 1e6:.2f}"])
        return rows, freqs, powers

    rows, freqs, powers = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_ribbon_count", format_table(
        ["ribbons", "f (GHz)", "P (uW)"], rows,
        title="GNR array size sweep (paper: 4 ribbons at 10 nm pitch)"))
    # Frequency approximately invariant; power grows with the array.
    assert max(freqs) / min(freqs) < 1.5
    assert powers[0] < powers[1] < powers[2]
