"""Adaptive exploration engine: solve reduction at golden accuracy.

Measures the two adaptive paths against their dense/fixed baselines and
writes the headline numbers to ``BENCH_adaptive.json`` at the
repository root (plus a line in ``BENCH_trajectory.jsonl``):

* **Contour-guided V_DD-V_T refinement** — ``refine_vdd_vt`` on the
  full Fig. 3 grid (15 x 13): every figure of merit must pass the
  committed ``goldens/fig3.json`` allowances (the goldens were blessed
  from the *dense* sweep), while issuing at least **5x fewer** device
  solves than the dense grid's valid-cell count.
* **Variance-adaptive Monte Carlo** — the Fig. 6 ensemble with a
  bootstrap-CI stop: the early-stopped run must reproduce the
  ``goldens/fig6.json`` spread and mean shifts within allowances at no
  more than **50%** of the fixed 2000-sample budget.

Smoke mode (``REPRO_BENCH_SMOKE=1``) switches to the fast grids where
the adaptive schedule still beats dense (>= 2x) and the MC budget is
too small to certify (the run then degenerates, by construction, to
the fixed ensemble bit for bit); golden agreement is asserted in both
modes.  Smoke never rewrites the committed ``BENCH_adaptive.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.characterize.diffing import diff_experiment
from repro.characterize.goldens import load_goldens
from repro.characterize.specs import SPECS, extract_fig3, extract_fig6
from repro.characterize.trajectory import (
    append_trajectory,
    trajectory_entry,
)
from repro.exploration.adaptive import refine_vdd_vt
from repro.exploration.operating_point import (
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    min_edp_point,
)
from repro.reporting.tables import format_table
from repro.variability.adaptive import run_ring_oscillator_monte_carlo_adaptive

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_adaptive.json"
GOLDEN_ROOT = ROOT / "goldens"

MODE = "fast" if SMOKE else "full"
MC_BUDGET = 200 if SMOKE else 2000
MIN_REDUCTION = 2.0 if SMOKE else 5.0


def _fig3_grids() -> tuple[np.ndarray, np.ndarray]:
    if SMOKE:
        return np.linspace(0.02, 0.3, 8), np.linspace(0.1, 0.7, 8)
    return np.linspace(0.02, 0.30, 15), np.linspace(0.10, 0.70, 13)


def _fig3_payload(grid) -> dict:
    """The slice of ``run_fig3``'s payload that ``extract_fig3`` reads."""
    snm_floor = 0.6 * float(np.nanmax(grid.snm_v))
    return {
        "optimum": min_edp_point(grid),
        "A": min_edp_at_frequency(grid, 3e9),
        "B": min_edp_at_frequency_and_snm(grid, 3e9, snm_floor),
    }


def test_adaptive_exploration_engine(benchmark, tech, save_report):
    goldens = load_goldens(root=GOLDEN_ROOT)
    vt_grid, vdd_grid = _fig3_grids()

    # ---- contour-guided refinement vs the dense-blessed golden ---- #
    start = time.perf_counter()
    refined = benchmark.pedantic(
        lambda: refine_vdd_vt(tech, vt_grid, vdd_grid),
        rounds=1, iterations=1)
    refine_wall = time.perf_counter() - start

    fig3_diff = diff_experiment(SPECS["fig3"],
                                extract_fig3(_fig3_payload(refined.grid)),
                                goldens.get("fig3"), MODE)
    n_cells = vt_grid.size * vdd_grid.size
    reduction_valid = refined.n_valid / refined.n_solves
    reduction_cells = n_cells / refined.n_solves

    # ---- variance-adaptive Monte Carlo vs the fixed-budget golden -- #
    start = time.perf_counter()
    mc = run_ring_oscillator_monte_carlo_adaptive(
        tech, n_max=MC_BUDGET, target_ci=0.05)
    mc_wall = time.perf_counter() - start
    fig6_diff = diff_experiment(SPECS["fig6"],
                                extract_fig6({"result": mc}),
                                goldens.get("fig6"), MODE)
    budget_frac = mc.n_used / mc.n_max

    rows = [
        [f"fig3 refinement ({len(vt_grid)}x{len(vdd_grid)})",
         f"{refined.n_solves} solves",
         f"{reduction_valid:.2f}x vs {refined.n_valid} valid "
         f"({reduction_cells:.2f}x vs {n_cells} cells), "
         f"{refined.n_waves} wave(s), {refine_wall:.1f} s"],
        ["fig3 golden diff",
         "ok" if fig3_diff.ok else "FAIL",
         f"{len(fig3_diff.metrics)} metrics vs goldens/fig3.json "
         f"[{MODE}]"],
        [f"fig6 adaptive MC (n_max={mc.n_max})",
         f"{mc.n_used} samples",
         f"{budget_frac:.0%} of budget, converged={mc.converged}, "
         f"{mc_wall:.1f} s"],
        ["fig6 golden diff",
         "ok" if fig6_diff.ok else "FAIL",
         f"{len(fig6_diff.metrics)} metrics vs goldens/fig6.json "
         f"[{MODE}]"],
    ]
    report = format_table(
        ["path", "result", "detail"], rows,
        title=f"Adaptive exploration engine ({MODE} mode"
              f"{', smoke' if SMOKE else ''})")
    save_report("adaptive", report)
    print(report)

    # Accuracy first: both golden diffs pass within the committed
    # per-metric allowances (blessed from the dense/fixed baselines).
    assert fig3_diff.ok, [m.name for m in fig3_diff.metrics if not m.ok]
    assert fig6_diff.ok, [m.name for m in fig6_diff.metrics if not m.ok]

    # Then economy: the refinement must beat dense by the mode's floor,
    # and the full-mode MC must stop at no more than half its budget.
    assert reduction_valid >= MIN_REDUCTION
    assert reduction_cells >= MIN_REDUCTION
    if not SMOKE:
        assert mc.converged
        assert budget_frac <= 0.5

    metrics = {
        "fig3_solves": refined.n_solves,
        "fig3_reduction_vs_valid": round(reduction_valid, 3),
        "fig6_samples": mc.n_used,
        "fig6_budget_frac": round(budget_frac, 3),
    }
    append_trajectory(trajectory_entry(
        "bench_adaptive", MODE, fig3_diff.ok and fig6_diff.ok,
        refine_wall + mc_wall, metrics))

    if SMOKE:
        return

    payload = {
        "schema": "repro-bench-adaptive/1",
        "fig3_refinement": {
            "grid": [len(vt_grid), len(vdd_grid)],
            "dense_cells": n_cells,
            "dense_valid_cells": refined.n_valid,
            "adaptive_solves": refined.n_solves,
            "coarse_solves": refined.n_coarse,
            "refinement_solves": refined.n_refined,
            "polish_solves": refined.n_polish,
            "waves": refined.n_waves,
            "levels": refined.levels,
            "reduction_vs_valid": reduction_valid,
            "reduction_vs_cells": reduction_cells,
            "golden_diff_ok": fig3_diff.ok,
            "wall_s": refine_wall,
        },
        "fig6_monte_carlo": {
            "n_max": mc.n_max,
            "n_used": mc.n_used,
            "budget_frac": budget_frac,
            "target_ci": mc.target_ci,
            "converged": mc.converged,
            "ci_halfwidths": mc.ci_halfwidths,
            "golden_diff_ok": fig6_diff.ok,
            "wall_s": mc_wall,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
