"""Microbenchmarks of the numerical kernels (timing-focused).

These use pytest-benchmark's statistics properly (multiple rounds) since
each kernel call is fast; they guard against performance regressions in
the hot paths: RGF, Poisson solves, table interpolation, SBFET bias
solves and transient steps.
"""

import numpy as np

from repro.atomistic.bandstructure import compute_bands
from repro.device.geometry import GNRFETGeometry
from repro.device.negf_device import _scalar_chain_rgf
from repro.device.sbfet import SBFETModel
from repro.negf.self_energy import lead_self_energy_1d
from repro.poisson.fd import solve_poisson_2d
from repro.poisson.grid import Grid2D


def test_bandstructure_kernel(benchmark):
    result = benchmark(compute_bands, 12, 101)
    assert result.energies_ev.shape == (101, 24)


def test_scalar_rgf_kernel(benchmark):
    energies = np.linspace(-0.5, 1.5, 400)
    onsite = np.linspace(0.3, -0.2, 61) + 9.9 * 2
    sigma = np.array([lead_self_energy_1d(e, 0.0, 9.9) for e in energies])

    out = benchmark(_scalar_chain_rgf, energies, onsite, 9.9, sigma, sigma)
    assert out.transmission.shape == (400,)


def test_poisson_2d_kernel(benchmark):
    grid = Grid2D(15.0, 3.35, 61, 15)
    eps = np.full(grid.shape, 3.9)
    rho = np.zeros(grid.shape)
    mask = np.zeros(grid.shape, bool)
    mask[:, 0] = mask[:, -1] = mask[0, :] = mask[-1, :] = True
    vals = np.zeros(grid.shape)
    vals[:, 0] = vals[:, -1] = 0.4

    phi = benchmark(solve_poisson_2d, grid, eps, rho, mask, vals)
    assert np.isfinite(phi).all()


def test_sbfet_bias_solve_kernel(benchmark, tech):
    model = SBFETModel(GNRFETGeometry(n_index=12))

    def solve():
        return model.solve_bias(0.4, 0.4)

    sol = benchmark(solve)
    assert sol.current_a > 0.0


def test_table_lookup_kernel(benchmark, tech):
    table = tech.array_table(0.13)

    def lookups():
        total = 0.0
        for vg in (0.0, 0.1, 0.2, 0.3, 0.4):
            for vd in (0.05, 0.2, 0.4):
                i, _, _ = table.current_and_derivatives(vg, vd)
                total += i
        return total

    total = benchmark(lookups)
    assert total > 0.0


def test_inverter_dc_kernel(benchmark, tech):
    from repro.circuit.dc import solve_dc
    from repro.circuit.inverter import build_inverter_chain

    nt, pt = tech.inverter_tables(0.13)
    circuit = build_inverter_chain(nt, pt, 0.4, tech.params)
    circuit.fixed[circuit.node("in")] = 0.2

    result = benchmark(solve_dc, circuit)
    assert result.iterations > 0
