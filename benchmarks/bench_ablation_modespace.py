"""Ablation: mode-space reduction vs full real-space p_z NEGF.

DESIGN.md §5 substitutes the paper's full-basis NEGF with per-subband
1-D transport; this bench quantifies the substitution on the quantity
it must preserve — transmission through a longitudinal potential
profile.  Assertions:

* pristine ribbon: real-space T(E) reproduces the exact subband
  staircase (< 1% error away from the edges);
* a smooth barrier: real-space tunneling exponent agrees with the
  two-band (mode-space) WKB within a factor 10 of transmission over
  the relevant window;
* the mode-space path is at least 3x faster per energy point for the
  production device size.
"""

import time

import numpy as np

from repro.atomistic.lattice import ArmchairGNR
from repro.atomistic.modespace import transverse_modes
from repro.device.geometry import GNRFETGeometry
from repro.device.negf_realspace import (
    RealSpaceGNRDevice,
    ideal_transmission_staircase,
    longitudinal_onsite,
)
from repro.device.sbfet import SBFETModel
from repro.reporting.tables import format_table


def test_modespace_vs_realspace(benchmark, save_report):
    n_index = 12
    n_cells = 35  # ~15 nm, the paper's channel length

    def run():
        # 1. pristine staircase.
        energies = np.array([0.35, 0.5, 0.75, 0.95, 1.1])
        pristine = RealSpaceGNRDevice(n_index, 12)
        t_real = np.array([pristine.transmission_at(float(e))
                           for e in energies])
        t_stairs = ideal_transmission_staircase(n_index, energies)

        # 2. barrier tunneling: exponential-cap profile like the SBFET's.
        rib = ArmchairGNR(n_index, n_cells)
        x = np.arange(n_cells) * rib.period_nm
        lam = 0.9
        u_ch = -0.05
        profile = (u_ch + (0.45 - u_ch) * np.exp(-x / lam)
                   + (0.45 - u_ch) * np.exp(-(x[-1] - x) / lam))
        device = RealSpaceGNRDevice(n_index, n_cells,
                                    longitudinal_onsite(rib, profile))
        # Probe above the (semiconducting) lead band edge at 0.304 eV -
        # the real-space leads cannot inject inside their own gap, while
        # the production model's metal contacts can; the comparison is
        # meaningful only where both inject.
        e_probe = np.array([0.35, 0.42, 0.50])
        t0 = time.perf_counter()
        t_barrier_real = np.array([device.transmission_at(float(e))
                                   for e in e_probe])
        t_real_time = (time.perf_counter() - t0) / e_probe.size

        model = SBFETModel(GNRFETGeometry(n_index=n_index))
        # Mode-space WKB on the same midgap profile (profile holds the
        # local midgap directly here).
        t0 = time.perf_counter()
        t_barrier_mode = model.transmission(
            e_probe, np.interp(model._x_nm, x, profile))
        t_mode_time = (time.perf_counter() - t0) / e_probe.size
        return (energies, t_real, t_stairs, e_probe, t_barrier_real,
                t_barrier_mode, t_real_time, t_mode_time)

    (energies, t_real, t_stairs, e_probe, t_br, t_bm,
     t_real_time, t_mode_time) = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)

    rows = [[f"{e:.2f}", f"{a:.3f}", f"{b:.0f}"]
            for e, a, b in zip(energies, t_real, t_stairs)]
    rows2 = [[f"{e:.2f}", f"{a:.2e}", f"{b:.2e}", f"{a / max(b, 1e-12):.2f}"]
             for e, a, b in zip(e_probe, t_br, t_bm)]
    report = (format_table(["E (eV)", "T real-space", "channel count"],
                           rows, title="Pristine N=12 staircase") + "\n\n"
              + format_table(["E (eV)", "T real-space", "T mode-space",
                              "ratio"], rows2,
                             title="Schottky-like barrier tunneling")
              + f"\n\nper-energy cost: real-space {t_real_time * 1e3:.1f} ms"
                f" vs mode-space {t_mode_time * 1e3:.2f} ms")
    save_report("ablation_modespace", report)

    assert np.allclose(t_real, t_stairs, atol=0.02)
    ratios = t_br / np.clip(t_bm, 1e-12, None)
    assert np.all(ratios > 0.1) and np.all(ratios < 10.0)
    assert t_real_time > 3.0 * t_mode_time
