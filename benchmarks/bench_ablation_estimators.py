"""Ablation: quasi-static estimators vs full transients; MC granularity.

The dense Fig. 3(b) sweep and the Fig. 6 Monte Carlo use quasi-static
surrogates (DESIGN.md section 6).  This bench validates them:

* the calibrated ring-oscillator estimate tracks the transient frequency
  within 35% across supplies;
* the inverter delay estimator tracks the transient FO4 delay within a
  factor ~2.5 before calibration (the fixed calibration constant);
* per-ribbon MC sampling produces a tighter, milder distribution than
  whole-device sampling (the array-averaging effect the paper's -10%
  mean shift relies on).
"""

import numpy as np

from repro.circuit.inverter import characterize_inverter, estimate_inverter_delay
from repro.circuit.ring_oscillator import (
    estimate_ring_oscillator,
    simulate_ring_oscillator,
)
from repro.reporting.tables import format_table
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo


def test_estimator_vs_transient(benchmark, tech, save_report):
    def run():
        rows = []
        ratios = []
        for vdd in (0.3, 0.4, 0.5):
            nt, pt = tech.inverter_tables(0.13)
            est = estimate_ring_oscillator(nt, pt, vdd, 15, tech.params)
            sim = simulate_ring_oscillator(nt, pt, vdd, 15, tech.params)
            ratios.append(est.frequency_hz / sim.frequency_hz)
            rows.append([f"{vdd:.1f}",
                         f"{est.frequency_hz / 1e9:.2f}",
                         f"{sim.frequency_hz / 1e9:.2f}",
                         f"{ratios[-1]:.2f}"])
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["VDD", "f_estimate (GHz)", "f_transient (GHz)", "ratio"], rows,
        title="Calibrated quasi-static RO estimate vs transient")
    save_report("ablation_estimators_ro", report)
    assert all(0.65 < r < 1.55 for r in ratios)


def test_delay_estimator_calibration_constant(benchmark, tech, save_report):
    """The raw (uncalibrated) delay estimator's transient ratio is the
    origin of ESTIMATOR_DELAY_CALIBRATION; verify it stays in band."""
    nt, pt = tech.inverter_tables(0.13)

    def run():
        est = estimate_inverter_delay(nt, pt, 0.4, tech.params)
        sim = characterize_inverter(nt, pt, 0.4, tech.params).delay_s
        return sim / est

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_estimators_delay",
                f"transient/estimate FO4 delay ratio: {ratio:.2f} "
                "(calibration constant 2.28)")
    assert 1.5 < ratio < 3.2


def test_mc_granularity(benchmark, tech, save_report):
    def run():
        ribbon = run_ring_oscillator_monte_carlo(
            tech, n_samples=600, seed=1, granularity="ribbon")
        device = run_ring_oscillator_monte_carlo(
            tech, n_samples=600, seed=1, granularity="device")
        return ribbon, device

    ribbon, device = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n".join([
        "Monte Carlo sampling granularity",
        f"per-ribbon: mean f shift {ribbon.mean_frequency_shift:+.1%}, "
        f"std {np.std(ribbon.frequencies_hz) / ribbon.nominal_frequency_hz:.1%}",
        f"per-device: mean f shift {device.mean_frequency_shift:+.1%}, "
        f"std {np.std(device.frequencies_hz) / device.nominal_frequency_hz:.1%}",
        "(the paper's ~-10% mean shift corresponds to per-ribbon draws;",
        " whole-device draws remove the 4-ribbon averaging)",
    ])
    save_report("ablation_mc_granularity", report)

    assert np.std(device.frequencies_hz) > np.std(ribbon.frequencies_hz)
    assert device.mean_frequency_shift < ribbon.mean_frequency_shift
