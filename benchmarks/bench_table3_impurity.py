"""Table 3: inverter sensitivity to independent charge impurities.

Regenerates the 5x5 (-2q..+2q) grid minus the nominal cell.  Paper
anchors asserted:

* the worst delay cell is the doubly-degraded (n: -2q, p: +2q) corner
  (paper +8-92%), and degradations far exceed the best improvements
  ("highly asymmetric");
* static power moves less than under width variation;
* the (n:+q, p:-q) combination degrades SNM (paper -14 to -40%).
"""

from repro.characterize.specs import extract_table3
from repro.reporting.experiments import run_table3


def test_table3_charge_impurities(benchmark, tech, save_report):
    report, data = benchmark.pedantic(
        run_table3, kwargs={"fast": False}, rounds=1, iterations=1)
    save_report("table3", report)

    fom = extract_table3(data)

    # Worst delay cell: the doubly-degraded (n: -2q, p: +2q) corner.
    assert fom["delay_worst_all_pct"] > 20.0
    assert fom["delay_worst_one_pct"] > 0.0

    # Asymmetry: biggest improvement much smaller than biggest
    # degradation.
    assert fom["asymmetry_ratio"] > 2.0

    # SNM of the +q/-q cell (paper -14..-40%).
    assert fom["snm_pq_all_pct"] < -3.0

    # Static power perturbations stay in the tens of percent
    # (vs hundreds for width variation).
    assert fom["pstat_max_abs_pct"] < 150.0
