"""Table 3: inverter sensitivity to independent charge impurities.

Regenerates the 5x5 (-2q..+2q) grid minus the nominal cell.  Paper
anchors asserted:

* the worst delay cell is the doubly-degraded (n: -2q, p: +2q) corner
  (paper +8-92%), and degradations far exceed the best improvements
  ("highly asymmetric");
* static power moves less than under width variation;
* the (n:+q, p:-q) combination degrades SNM (paper -14 to -40%).
"""

from repro.reporting.experiments import run_table3


def test_table3_charge_impurities(benchmark, tech, save_report):
    report, data = benchmark.pedantic(
        run_table3, kwargs={"fast": False}, rounds=1, iterations=1)
    save_report("table3", report)

    entries = data["entries"]

    worst = entries[(+2.0, -2.0)]  # (p_charge, n_charge)
    assert worst.delay_pct[1] > 20.0
    assert worst.delay_pct[0] > 0.0

    # Asymmetry: biggest improvement much smaller than biggest
    # degradation.
    degradations = [e.delay_pct[1] for e in entries.values()]
    best_improvement = -min(degradations)
    worst_degradation = max(degradations)
    assert worst_degradation > 2.0 * max(best_improvement, 1.0)

    # SNM of the +q/-q cell (paper -14..-40%).
    assert entries[(-1.0, +1.0)].snm_pct[1] < -3.0

    # Static power perturbations stay in the tens of percent
    # (vs hundreds for width variation).
    assert max(abs(e.static_power_pct[1]) for e in entries.values()) < 150.0
