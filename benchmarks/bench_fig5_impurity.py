"""Figure 5: charge-impurity band profiles (NEGF) and I-V.

Paper anchors asserted:
* a negative impurity raises the Schottky-barrier height/thickness, a
  positive one lowers it (Fig 5a ordering, from the self-consistent
  NEGF + Poisson engine);
* the -2q impurity lowers I_on by a large factor (paper ~6x);
* the +2q impurity perturbs the n-branch far less (asymmetry).
"""

import numpy as np

from repro.reporting.experiments import run_fig5
from repro.reporting.figures import save_series_csv


def test_fig5_impurity(benchmark, tech, save_report, output_dir):
    report, data = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_report("fig5", report)
    save_series_csv(data["profiles"], output_dir / "fig5a_profiles.csv")
    save_series_csv(data["iv"], output_dir / "fig5b_iv.csv")

    profiles = {p.name: p for p in data["profiles"]}
    peak = {name: float(p.y.max()) for name, p in profiles.items()}
    # Barrier ordering: -2q > -1q > ideal >= +1q >= +2q (Fig 5a).
    assert peak["-2q"] > peak["-1q"] > peak["no impurity"]
    assert peak["+2q"] <= peak["no impurity"] + 0.02
    assert peak["-2q"] > peak["no impurity"] + 0.25

    # I-V anchors (Fig 5b).
    drop = data["ion_drop_minus2q"]
    assert 3.0 < drop < 10.0

    iv = {s.name: s for s in data["iv"]}
    ion_ideal = float(iv["no impurity"].y[-1])
    ion_pos = float(iv["+2q"].y[-1])
    dev_pos = abs(np.log(ion_pos / ion_ideal))
    dev_neg = abs(np.log(float(iv["-2q"].y[-1]) / ion_ideal))
    assert dev_neg > 2.0 * dev_pos
