"""Figure 5: charge-impurity band profiles (NEGF) and I-V.

Paper anchors asserted:
* a negative impurity raises the Schottky-barrier height/thickness, a
  positive one lowers it (Fig 5a ordering, from the self-consistent
  NEGF + Poisson engine);
* the -2q impurity lowers I_on by a large factor (paper ~6x);
* the +2q impurity perturbs the n-branch far less (asymmetry).
"""

from repro.characterize.specs import extract_fig5
from repro.reporting.experiments import run_fig5
from repro.reporting.figures import save_series_csv


def test_fig5_impurity(benchmark, tech, save_report, output_dir):
    report, data = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_report("fig5", report)
    save_series_csv(data["profiles"], output_dir / "fig5a_profiles.csv")
    save_series_csv(data["iv"], output_dir / "fig5b_iv.csv")

    fom = extract_fig5(data)
    profiles = {p.name: p for p in data["profiles"]}
    peak = {name: float(p.y.max()) for name, p in profiles.items()}
    # Barrier ordering: -2q > -1q > ideal >= +1q >= +2q (Fig 5a).
    assert peak["-2q"] > peak["-1q"] > peak["no impurity"]
    assert fom["barrier_shift_plus2q_ev"] <= 0.02
    assert fom["barrier_shift_minus2q_ev"] > 0.25

    # I-V anchors (Fig 5b).
    assert 3.0 < fom["ion_drop_minus2q"] < 10.0

    # The +2q impurity perturbs the n-branch far less than -2q.
    assert fom["asymmetry_logdev_ratio"] > 2.0
