"""Extension: memory yield and ECC overhead (paper Section 5.3, quantified).

The paper argues GNRFET memories need ECC/redundancy because variability
drives latch noise margins toward zero.  This bench samples Monte Carlo
latch cells (per-ribbon width/impurity draws, exact butterfly SNM per
cell), converts the SNM distribution into cell failure probabilities at
several noise budgets, and evaluates the Hamming-SEC protection the
paper gestures at.

Assertions:

* the sampled SNM distribution has a degraded tail below the nominal;
* cell failure probability is monotone in the noise budget;
* SEC improves word failure by orders of magnitude at small p_cell, at
  ~11% redundancy for 64-bit words (the quantitative content of the
  paper's "redundancy required for ECC ... may be off-set" sentence).
"""

from repro.characterize.specs import extract_ext_yield
from repro.circuit.inverter import inverter_snm
from repro.reporting.ascii_plot import ascii_histogram
from repro.reporting.tables import format_table
from repro.variability.yield_model import (
    ECCAnalysis,
    cell_failure_probability,
    required_sec_words_per_data_word,
    sample_latch_snm,
)


def test_memory_yield_and_ecc(benchmark, tech, save_report):
    def run():
        return sample_latch_snm(tech, n_cells=250, n_vtc_points=31)

    snm = benchmark.pedantic(run, rounds=1, iterations=1)
    nominal = inverter_snm(*tech.inverter_tables(0.13), 0.4, tech.params)

    budgets = (0.02, 0.035, 0.05)
    rows = []
    for budget in budgets:
        p_cell = cell_failure_probability(snm, budget)
        ecc = ECCAnalysis(p_cell=max(p_cell, 1e-6), data_bits=64)
        k = required_sec_words_per_data_word(max(p_cell, 1e-6), 1e-9)
        rows.append([f"{budget * 1e3:.0f} mV", f"{p_cell:.3f}",
                     f"{ecc.word_failure_raw():.2e}",
                     f"{ecc.word_failure_sec():.2e}",
                     f"{ecc.overhead:.1%}", str(k)])

    report = (ascii_histogram(snm * 1e3, bins=20,
                              title=f"latch hold-SNM distribution (mV); "
                                    f"nominal {nominal * 1e3:.0f} mV")
              + "\n\n"
              + format_table(["noise budget", "p_cell", "raw word fail",
                              "SEC word fail", "ECC overhead",
                              "interleave for 1e-9"], rows,
                             title="64-bit word reliability"))
    save_report("ext_memory_yield", report)

    fom = extract_ext_yield({"snm_samples": snm})
    assert fom["snm_std_mv"] > 0.0
    assert fom["snm_min_mv"] < nominal * 1e3

    p_vals = [fom["p_cell_20mv"], fom["p_cell_35mv"], fom["p_cell_50mv"]]
    assert all(a <= b for a, b in zip(p_vals, p_vals[1:]))

    ecc = ECCAnalysis(p_cell=max(p_vals[0], 1e-4), data_bits=64)
    assert ecc.improvement_factor() > 5.0
    assert ecc.overhead < 0.12
