"""Table 1: GNRFET ring oscillator (points A/B/C) vs scaled CMOS.

The GNRFET rows use the full transient simulator; the CMOS rows the
calibrated compact model.  Paper anchors asserted:

* GNRFET point B lands in the low-GHz class (paper 3.4 GHz);
* CMOS EDP exceeds GNRFET point-B EDP by a large factor everywhere
  (paper 40-168x; shape contract: > 20x and < 1000x);
* point C (same V_DD, higher V_T) is markedly slower than B
  (paper: B is 40% faster);
* every CMOS SNM exceeds every GNRFET SNM.
"""

from repro.characterize.specs import extract_table1
from repro.reporting.experiments import run_table1


def test_table1_gnrfet_vs_cmos(benchmark, tech, save_report):
    report, data = benchmark.pedantic(
        run_table1, kwargs={"fast": False}, rounds=1, iterations=1)
    save_report("table1", report)

    cmos = data["cmos"]
    fom = extract_table1(data)

    assert 1.5 < fom["b_frequency_ghz"] < 8.0
    assert fom["edp_ratio_min"] > 20.0
    assert fom["edp_ratio_max"] < 1000.0

    assert 1.2 < fom["b_over_c_frequency"] < 2.5

    assert max(r.snm_v for r in data["gnrfet"]) < min(r.snm_v for r in cmos)

    # CMOS node ordering at 0.8 V: 22 nm fastest, 45 nm highest EDP.
    at_08 = {r.label: r for r in cmos if r.label.endswith("0.8V")}
    assert (at_08["22nm@0.8V"].frequency_ghz
            > at_08["32nm@0.8V"].frequency_ghz
            > at_08["45nm@0.8V"].frequency_ghz)
    assert (at_08["22nm@0.8V"].edp_fj_ps
            < at_08["32nm@0.8V"].edp_fj_ps
            < at_08["45nm@0.8V"].edp_fj_ps)
