#!/usr/bin/env python
"""Variability screening: how robust is a GNRFET design point?

Reproduces the paper's Section 5 methodology as a design-screening flow:

1. characterize the nominal FO4 inverter at (V_DD = 0.4 V, V_T = 0.13 V);
2. screen the worst-case width corners (N=9 slow corner, N=18 leaky
   corner) under the paper's two array scenarios;
3. screen the worst charge-impurity corner;
4. run a quick Monte Carlo of the 15-stage ring oscillator with
   per-ribbon width/impurity draws and report the mean shifts the paper
   quotes in Fig. 6 (-10% frequency, +23% static power).

Run:  python examples/variability_screening.py
"""

from repro import GNRFETTechnology
from repro.circuit import characterize_inverter
from repro.reporting.ascii_plot import ascii_histogram
from repro.reporting.tables import format_pct_pair, format_table
from repro.variability import (
    DeviceVariant,
    run_ring_oscillator_monte_carlo,
)
from repro.variability.width import sensitivity_entry

VDD, VT = 0.4, 0.13


def main() -> None:
    tech = GNRFETTechnology.build()
    print("Characterizing the nominal inverter...")
    nominal = characterize_inverter(*tech.inverter_tables(VT), VDD,
                                    tech.params)
    print(f"  delay {nominal.delay_s * 1e12:.2f} ps, "
          f"Pstat {nominal.static_power_w * 1e6:.3f} uW, "
          f"Pdyn {nominal.dynamic_power_w * 1e6:.3f} uW, "
          f"SNM {nominal.snm_v * 1e3:.0f} mV\n")

    corners = {
        "slow (n,p = N=9)": (DeviceVariant(n_index=9),
                             DeviceVariant(n_index=9)),
        "leaky (n,p = N=18)": (DeviceVariant(n_index=18),
                               DeviceVariant(n_index=18)),
        "SNM-worst (n=9 vs p=18)": (DeviceVariant(n_index=9),
                                    DeviceVariant(n_index=18)),
        "impurity (-2q n / +2q p)": (DeviceVariant(impurity_e=-2.0),
                                     DeviceVariant(impurity_e=+2.0)),
    }

    rows = []
    for label, (n_var, p_var) in corners.items():
        print(f"Screening corner: {label} ...")
        entry = sensitivity_entry(tech, n_var, p_var, nominal, VDD, VT)
        rows.append([label,
                     format_pct_pair(entry.delay_pct),
                     format_pct_pair(entry.static_power_pct),
                     format_pct_pair(entry.dynamic_power_pct),
                     format_pct_pair(entry.snm_pct)])

    print()
    print(format_table(
        ["corner", "delay %", "Pstat %", "Pdyn %", "SNM %"], rows,
        title="Worst-case corners (cells: one GNR affected, all affected)"))

    print("\nMonte Carlo over the 15-stage ring oscillator "
          "(per-ribbon draws)...")
    mc = run_ring_oscillator_monte_carlo(tech, n_samples=500, vdd=VDD,
                                         vt=VT)
    print(f"  mean frequency shift    {mc.mean_frequency_shift:+.1%} "
          "(paper: -10%)")
    print(f"  mean static power shift {mc.mean_static_power_shift:+.1%} "
          "(paper: +23%)")
    print(f"  mean dynamic power shift {mc.mean_dynamic_power_shift:+.1%} "
          "(paper: ~0%)")
    print()
    print(ascii_histogram(mc.frequencies_hz / 1e9, bins=20,
                          title="frequency distribution (GHz)"))


if __name__ == "__main__":
    main()
