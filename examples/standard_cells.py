#!/usr/bin/env python
"""Standard-cell characterization: INV / NAND2 / NOR2 in one GNRFET flow.

The paper characterizes inverters; a technology library needs multi-input
gates too.  This example characterizes a three-cell "library" at the
paper's nominal operating point and prints a datasheet-style summary —
delay, leakage, and logic levels — all from the same lookup tables.

Run:  python examples/standard_cells.py
"""

from repro import GNRFETTechnology
from repro.circuit import (
    build_nand2,
    build_nor2,
    characterize_gate,
    characterize_inverter,
    gate_truth_table,
)
from repro.reporting.tables import format_table

VDD, VT = 0.4, 0.13


def main() -> None:
    tech = GNRFETTechnology.build()
    nt, pt = tech.inverter_tables(VT)

    print("Characterizing the cell library "
          f"(V_DD = {VDD} V, V_T = {VT} V)...\n")

    inv = characterize_inverter(nt, pt, VDD, tech.params)
    nand = characterize_gate("nand2", nt, pt, VDD, tech.params)
    nor = characterize_gate("nor2", nt, pt, VDD, tech.params)

    rows = [
        ["INV", f"{inv.delay_s * 1e12:.2f}",
         f"{inv.static_power_w * 1e6:.4f}", "-"],
        ["NAND2", f"{nand.worst_delay_s * 1e12:.2f}",
         f"{nand.static_power_w * 1e6:.4f}",
         f"a:{nand.delays_s['a'] * 1e12:.2f} b:{nand.delays_s['b'] * 1e12:.2f}"],
        ["NOR2", f"{nor.worst_delay_s * 1e12:.2f}",
         f"{nor.static_power_w * 1e6:.4f}",
         f"a:{nor.delays_s['a'] * 1e12:.2f} b:{nor.delays_s['b'] * 1e12:.2f}"],
    ]
    print(format_table(
        ["cell", "worst delay (ps)", "leakage (uW)", "per-pin (ps)"],
        rows, title="GNRFET standard cells (FO4 loads)"))

    print("\nNAND2 logic levels (DC):")
    levels = gate_truth_table(build_nand2(nt, pt, VDD, tech.params), VDD)
    for (a, b), v in sorted(levels.items()):
        print(f"  a={int(a)} b={int(b)}  ->  out = {v:.3f} V")

    print("\nNOR2 logic levels (DC):")
    levels = gate_truth_table(build_nor2(nt, pt, VDD, tech.params), VDD)
    for (a, b), v in sorted(levels.items()):
        print(f"  a={int(a)} b={int(b)}  ->  out = {v:.3f} V")

    print("\nThe series n-stack makes NAND2 the slower cell, as in "
          "silicon - the\nGNRFET ambipolarity does not change static-CMOS "
          "topology rules.")


if __name__ == "__main__":
    main()
