#!/usr/bin/env python
"""Trace tour: watch the observability layer follow one device solve.

A minimal end-to-end pass through `repro.obs` (docs/observability.md):

1. switch tracing on programmatically (`obs.enable()` — the CLI
   equivalent is `repro run <id> --trace` or `REPRO_TRACE=1`);
2. solve a handful of bias points on the paper's nominal N=12 device
   under a wrapping span, so the SCF/energy-grid counters and the
   span tree fill in;
3. build the JSON run manifest and print its summarized form — the
   same text `repro trace summarize <manifest>` renders.

Run:  python examples/trace_tour.py
"""

import time

from repro import GNRFETGeometry, SBFETModel, obs


def main() -> None:
    obs.enable()
    obs.reset()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()

    model = SBFETModel(GNRFETGeometry(n_index=12))
    with obs.span("example.trace_tour", n_index=12):
        for vg, vd in [(0.0, 0.5), (0.25, 0.5), (0.5, 0.5), (0.4, 0.1)]:
            with obs.span("example.bias_point", vg=vg, vd=vd):
                solution = model.solve_bias(vg, vd)
            print(f"  VG = {vg:4.2f} V, VD = {vd:4.2f} V  ->  "
                  f"ID = {solution.current_a:.3e} A")

    manifest = obs.build_manifest(
        label="trace tour (N=12 bias points)",
        config={"n_index": 12, "bias_points": 4},
        wall_s=time.perf_counter() - wall_start,
        cpu_s=time.process_time() - cpu_start)
    path = obs.write_manifest(manifest, "trace-tour.manifest.json")
    print(f"\nwrote {path} — summarizing:\n")
    print(obs.summarize_text(manifest), end="")


if __name__ == "__main__":
    main()
