#!/usr/bin/env python
"""Memory-cell reliability: latch noise margins under defects.

The paper singles out dense memories as "the biggest prospect for
graphene-based devices" and also the most vulnerable: the worst
variation/defect combination collapses one eye of the latch butterfly
(near-zero SNM) and multiplies hold leakage.  This example walks the
Fig. 7 study and renders the butterfly curves.

Run:  python examples/memory_reliability.py
"""

import numpy as np

from repro import GNRFETTechnology
from repro.reporting.ascii_plot import ascii_line_plot
from repro.reporting.tables import format_table
from repro.variability.latch_study import latch_variability_study


def butterfly_plot(case) -> str:
    b = case.butterfly
    order = np.argsort(b.mirrored_x)
    mirrored = np.interp(b.v_in, b.mirrored_x[order], b.mirrored_y[order])
    return ascii_line_plot(
        b.v_in,
        {"inv1: VR(VL)": b.forward, "inv2 mirrored": mirrored},
        height=16, width=60,
        title=f"butterfly: {case.label} (SNM {case.snm_v * 1e3:.0f} mV)")


def main() -> None:
    tech = GNRFETTechnology.build()
    print("Evaluating the paper's three latch cases "
          "(nominal / single GNR / all GNRs affected;\n"
          "worst anomaly: n-device N=9 & +q, p-device N=18 & -q)...\n")
    cases = latch_variability_study(tech)

    nominal = cases[0]
    rows = [[c.label, f"{c.snm_v * 1e3:.0f} mV",
             f"{c.static_power_w * 1e6:.3f} uW",
             f"{c.static_power_w / nominal.static_power_w:.1f}x"]
            for c in cases]
    print(format_table(["case", "hold SNM", "leakage", "vs nominal"],
                       rows, title="Latch reliability (paper Fig. 7)"))

    print()
    print(butterfly_plot(cases[0]))
    print()
    print(butterfly_plot(cases[-1]))
    print("\nThe collapsed eye in the worst case is why the paper flags "
          "ECC and\nredundancy as prerequisites for GNRFET memories.")


if __name__ == "__main__":
    main()
