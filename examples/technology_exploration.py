#!/usr/bin/env python
"""Technology exploration: pick an operating point for a GNRFET design.

Reproduces the paper's Section 3.1 workflow on a coarse grid:

1. sweep the 15-stage FO4 ring oscillator over the (V_T, V_DD) plane;
2. find the global EDP optimum (fast to compute, slow to run);
3. find point A - minimum EDP subject to a 3 GHz frequency floor;
4. find point B - additionally meeting an SNM floor;
5. demonstrate the paper's point-C lesson: a higher-V_T design with the
   same EDP/SNM as B runs markedly slower, because raising V_T moves the
   ambipolar device *away* from its minimum-leakage alignment.

Run:  python examples/technology_exploration.py
"""

import numpy as np

from repro import GNRFETTechnology
from repro.exploration import (
    matched_edp_snm_higher_vt,
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    min_edp_point,
    sweep_vdd_vt,
)
from repro.errors import AnalysisError
from repro.reporting.tables import format_table


def describe(label, p):
    return [label, f"{p.vt:.2f}", f"{p.vdd:.2f}",
            f"{p.frequency_hz / 1e9:.2f}", f"{p.edp_j_s * 1e27:.1f}",
            f"{p.snm_v * 1e3:.0f}"]


def main() -> None:
    tech = GNRFETTechnology.build()

    print("Sweeping the (V_T, V_DD) plane "
          "(quasi-static 15-stage FO4 ring oscillator)...")
    grid = sweep_vdd_vt(tech,
                        vt_grid=np.linspace(0.02, 0.30, 11),
                        vdd_grid=np.linspace(0.10, 0.70, 11))

    optimum = min_edp_point(grid)
    point_a = min_edp_at_frequency(grid, 3e9)
    snm_floor = 0.6 * float(np.nanmax(grid.snm_v))
    point_b = min_edp_at_frequency_and_snm(grid, 3e9, snm_floor)

    rows = [describe("global EDP optimum", optimum),
            describe("A: min EDP @ 3 GHz", point_a),
            describe(f"B: + SNM >= {snm_floor * 1e3:.0f} mV", point_b)]

    try:
        point_c = matched_edp_snm_higher_vt(grid, point_b,
                                            edp_tolerance=0.35,
                                            snm_tolerance=0.35)
        rows.append(describe("C: same EDP/SNM, higher V_T", point_c))
        slowdown = (1.0 - point_c.frequency_hz / point_b.frequency_hz)
        lesson = (f"\nPoint C runs {slowdown:.0%} slower than B at "
                  "matched EDP/SNM - raising V_T buys nothing in a "
                  "GNRFET (paper: B is 40% faster than C).")
    except AnalysisError:
        lesson = ("\nNo higher-V_T twin of B exists on this coarse grid; "
                  "refine the sweep to locate point C.")

    print(format_table(
        ["operating point", "VT (V)", "VDD (V)", "f (GHz)",
         "EDP (fJ-ps)", "SNM (mV)"], rows,
        title="\nOperating points of the 15-stage FO4 ring oscillator"))
    print(lesson)


if __name__ == "__main__":
    main()
