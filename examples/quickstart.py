#!/usr/bin/env python
"""Quickstart: simulate a GNRFET, build its lookup table, run an inverter.

This walks the library's three layers in ~40 lines:

1. device physics - the fast ballistic Schottky-barrier FET engine on an
   N=12 armchair GNR (the paper's nominal channel);
2. lookup tables - the I-V/Q-V data that decouple device and circuit
   simulation, with the gate work-function offset used for V_T design;
3. circuit simulation - a fanout-of-4 inverter characterized at the
   paper's nominal operating point (V_DD = 0.4 V, V_T = 0.13 V).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GNRFETGeometry, GNRFETTechnology, SBFETModel
from repro.circuit import characterize_inverter


def main() -> None:
    # -- 1. Device physics ------------------------------------------------
    geometry = GNRFETGeometry(n_index=12)   # 15 nm channel, 1.5 nm SiO2 DG
    model = SBFETModel(geometry)
    print(f"N=12 A-GNR: width {geometry.width_nm:.2f} nm, "
          f"band gap {geometry.band_gap_ev:.3f} eV, "
          f"Schottky barrier {geometry.schottky_barrier_ev:.3f} eV")

    print("\nAmbipolar I-V at V_D = 0.5 V:")
    for vg in np.arange(0.0, 0.751, 0.15):
        print(f"  VG = {vg:4.2f} V  ->  ID = {model.current_at(vg, 0.5):.3e} A")

    # -- 2. Technology bundle (tables + V_T control) ----------------------
    # GNRFETTechnology builds the nominal per-ribbon lookup table once
    # (a few seconds of device simulation) and handles V_T via the gate
    # work-function offset.
    tech = GNRFETTechnology.build(geometry)
    print(f"\nZero-offset threshold V_T0 = {tech.vt0:.3f} V "
          f"(paper: ~0.3 V)")
    offset = tech.gate_offset_for_vt(0.13)
    print(f"Work-function offset for V_T = 0.13 V: {offset:.3f} V")

    # -- 3. Circuit: FO4 inverter at the paper's point B -------------------
    n_table, p_table = tech.inverter_tables(vt=0.13)
    metrics = characterize_inverter(n_table, p_table, vdd=0.4,
                                    params=tech.params)
    print("\nFO4 inverter at V_DD = 0.4 V, V_T = 0.13 V "
          "(paper: 7.54 ps / 0.095 uW / 0.706 uW / 0.15 V):")
    print(f"  delay          {metrics.delay_s * 1e12:6.2f} ps")
    print(f"  static power   {metrics.static_power_w * 1e6:6.3f} uW")
    print(f"  dynamic power  {metrics.dynamic_power_w * 1e6:6.3f} uW")
    print(f"  SNM            {metrics.snm_v * 1e3:6.1f} mV")


if __name__ == "__main__":
    main()
