#!/usr/bin/env python
"""Device-physics tour: from carbon atoms to a transistor, layer by layer.

A guided walk through the bottom-up stack the paper builds on:

1. tight-binding bands of armchair GNRs - gaps vs width and family;
2. the NEGF machinery on a toy chain - transmission through a barrier;
3. the reference self-consistent NEGF + Poisson GNRFET - band profile
   along the channel with and without an oxide charge impurity
   (the paper's Fig. 5a);
4. the fast engine's view of the same device, side by side.

Run:  python examples/device_physics_tour.py
"""

import numpy as np

from repro import ChargeImpurity, GNRFETGeometry, NEGFDevice, SBFETModel
from repro.atomistic import band_gap_ev, transverse_modes
from repro.constants import gnr_width_nm
from repro.negf import recursive_greens_function
from repro.negf.self_energy import lead_self_energy_1d
from repro.reporting.ascii_plot import ascii_line_plot
from repro.reporting.tables import format_table


def tour_bands() -> None:
    print("=" * 68)
    print("1. Tight-binding band structure of armchair GNRs")
    print("=" * 68)
    rows = []
    for n in range(9, 19):
        family = n % 3
        tag = {0: "3q", 1: "3q+1", 2: "3q+2 (small gap)"}[family]
        rows.append([f"N={n}", f"{gnr_width_nm(n):.2f}",
                     f"{band_gap_ev(n):.3f}", tag])
    print(format_table(["index", "width (nm)", "E_g (eV)", "family"],
                       rows))
    mode = transverse_modes(12, 1)[0]
    print(f"\nLowest N=12 subband: edge {mode.edge_ev:.3f} eV, "
          f"m* = {mode.mass_kg / 9.109e-31:.3f} m0, "
          f"v = {mode.velocity_m_per_s / 1e6:.2f}e6 m/s")


def tour_negf_chain() -> None:
    print("\n" + "=" * 68)
    print("2. NEGF on a 1-D chain: transmission through an on-site barrier")
    print("=" * 68)
    n, t = 40, 1.0
    diag = [np.array([[0.0]]) for _ in range(n)]
    for i in range(18, 23):
        diag[i] = np.array([[0.8]])
    coup = [np.array([[-t]])] * (n - 1)
    energies = np.linspace(-1.8, 1.8, 61)
    trans = []
    for e in energies:
        sigma = np.array([[lead_self_energy_1d(e, 0.0, t, 1e-9)]])
        trans.append(recursive_greens_function(
            e, diag, coup, sigma, sigma, 1e-9).transmission)
    print(ascii_line_plot(energies, {"T(E)": np.array(trans)}, height=12,
                          title="5-site 0.8 eV barrier in a 40-site chain"))


def tour_negf_device() -> None:
    print("\n" + "=" * 68)
    print("3. Self-consistent NEGF + Poisson GNRFET (paper Fig. 5a)")
    print("=" * 68)
    curves = {}
    for label, impurity in (("ideal", None),
                            ("-2q impurity", ChargeImpurity(charge_e=-2.0)),
                            ("+2q impurity", ChargeImpurity(charge_e=+2.0))):
        device = NEGFDevice(GNRFETGeometry(n_index=12, impurity=impurity),
                            n_x=41, n_y=11)
        result = device.solve(0.1, 0.5)
        curves[label] = result.conduction_band_ev
        x = result.x_nm
    print(ascii_line_plot(x, curves, height=14,
                          title="conduction band E_C(x) at VG=0.1, VD=0.5"))


def tour_fast_engine() -> None:
    print("\n" + "=" * 68)
    print("4. The production fast engine: full I-V in milliseconds")
    print("=" * 68)
    model = SBFETModel(GNRFETGeometry(n_index=12))
    vg = np.linspace(0.0, 0.75, 31)
    curves = {}
    for vd in (0.25, 0.5, 0.75):
        curves[f"VD={vd}"] = np.array(
            [model.current_at(float(v), vd) for v in vg])
    print(ascii_line_plot(vg, curves, logy=True, height=14,
                          title="ambipolar ID-VG (log scale)"))
    print("\nNote the minimum near VG = VD/2 and the exponential growth "
          "of the\nleakage floor with VD - the SBFET signatures the "
          "paper's Fig. 2a shows.")


def main() -> None:
    tour_bands()
    tour_negf_chain()
    tour_negf_device()
    tour_fast_engine()


if __name__ == "__main__":
    main()
