"""Tests for the real-space p_z NEGF device."""

import numpy as np
import pytest

from repro.atomistic.lattice import ArmchairGNR
from repro.device.negf_realspace import (
    RealSpaceGNRDevice,
    ideal_transmission_staircase,
    longitudinal_onsite,
    rough_edge_onsite,
)
from repro.errors import InvalidDeviceError


class TestPristineRibbon:
    @pytest.mark.parametrize("n_index", [9, 12])
    def test_transmission_equals_channel_count(self, n_index):
        """Ideal ribbon with matched leads: T(E) = number of propagating
        subbands (the staircase)."""
        dev = RealSpaceGNRDevice(n_index, 8)
        energies = np.array([0.25, 0.5, 1.0, -0.45, -1.0])
        trans = [dev.transmission_at(float(e)) for e in energies]
        ref = ideal_transmission_staircase(n_index, energies)
        assert np.allclose(trans, ref, atol=2e-3)

    def test_gap_blocks(self):
        dev = RealSpaceGNRDevice(12, 8)
        assert dev.transmission_at(0.1) < 1e-2

    def test_particle_hole_symmetric_transmission(self):
        dev = RealSpaceGNRDevice(9, 6)
        t_e = dev.transmission_at(0.6)
        t_h = dev.transmission_at(-0.6)
        assert t_e == pytest.approx(t_h, abs=1e-6)

    def test_length_independence_ballistic(self):
        """Pristine transmission does not decay with length."""
        t_short = RealSpaceGNRDevice(12, 4).transmission_at(0.5)
        t_long = RealSpaceGNRDevice(12, 20).transmission_at(0.5)
        assert t_long == pytest.approx(t_short, abs=1e-4)


class TestPotentialProfile:
    def test_barrier_reflects(self):
        rib = ArmchairGNR(12, 10)
        profile = np.zeros(10)
        profile[4:6] = 0.4
        dev = RealSpaceGNRDevice(12, 10, longitudinal_onsite(rib, profile))
        assert dev.transmission_at(0.35) < 0.8

    def test_in_gap_barrier_blocks_exponentially(self):
        """A barrier that keeps the energy inside the *local* gap decays
        exponentially with barrier length.  (A much taller barrier would
        put the energy into the barrier's valence band, where the
        atomistic model legitimately transmits through interband states
        - the effect the fast engine's two-channel WKB suppresses.)"""
        rib = ArmchairGNR(12, 12)
        short = np.zeros(12)
        short[5:7] = 0.5
        long_b = np.zeros(12)
        long_b[3:9] = 0.5
        t_short = RealSpaceGNRDevice(
            12, 12, longitudinal_onsite(rib, short)).transmission_at(0.35)
        t_long = RealSpaceGNRDevice(
            12, 12, longitudinal_onsite(rib, long_b)).transmission_at(0.35)
        assert t_long < 0.2 * t_short

    def test_profile_shape_validated(self):
        rib = ArmchairGNR(12, 10)
        with pytest.raises(ValueError):
            longitudinal_onsite(rib, np.zeros(9))

    def test_matches_mode_space_barrier_decay(self):
        """Cross-validation of the mode-space substitution: the decay of
        T through a smooth barrier must agree with the two-band kappa
        estimate within a factor ~3 in the exponent region."""
        from repro.atomistic.modespace import transverse_modes

        rib = ArmchairGNR(12, 16)
        profile = np.zeros(16)
        profile[5:11] = 0.5  # 6-cell barrier, 2.56 nm
        dev = RealSpaceGNRDevice(12, 16, longitudinal_onsite(rib, profile))
        energy = 0.35  # inside the shifted gap region of the barrier
        t_real = dev.transmission_at(energy)
        mode = transverse_modes(12, 1)[0]
        kappa = mode.kappa_per_nm(energy - 0.5)  # local midgap at 0.5
        t_wkb = np.exp(-2.0 * kappa * 6 * rib.period_nm)
        assert 0.1 * t_wkb < t_real < 10.0 * t_wkb


class TestCurrent:
    def test_landauer_current_positive(self):
        dev = RealSpaceGNRDevice(12, 8)
        energies = np.linspace(-0.7, 0.7, 141)
        transport = dev.transport(energies)
        i = transport.current_a(0.5, 0.0)
        assert i > 0.0
        assert transport.current_a(0.0, 0.5) == pytest.approx(-i, rel=1e-9)


class TestEdgeRoughness:
    def test_removal_count_scales_with_probability(self):
        rib = ArmchairGNR(12, 20)
        rng = np.random.default_rng(0)
        _, n_lo = rough_edge_onsite(rib, 0.02, rng)
        rng = np.random.default_rng(0)
        _, n_hi = rough_edge_onsite(rib, 0.3, rng)
        assert n_hi > n_lo

    def test_only_edge_rows_touched(self):
        rib = ArmchairGNR(12, 10)
        rng = np.random.default_rng(3)
        onsite, _ = rough_edge_onsite(rib, 1.0, rng)
        # All edge atoms removed, no interior atom touched.
        for cell in range(10):
            for row in range(12):
                for slot in (0, 1):
                    idx = rib.atom_index(cell, row, slot)
                    if row in (0, 11):
                        assert onsite[idx] > 100.0
                    else:
                        assert onsite[idx] == 0.0

    def test_roughness_degrades_transmission(self):
        rib = ArmchairGNR(9, 16)
        rng = np.random.default_rng(5)
        onsite, _ = rough_edge_onsite(rib, 0.15, rng)
        t_clean = RealSpaceGNRDevice(9, 16).transmission_at(0.55)
        t_rough = RealSpaceGNRDevice(9, 16, onsite).transmission_at(0.55)
        assert t_rough < 0.8 * t_clean

    def test_zero_probability_is_pristine(self):
        rib = ArmchairGNR(9, 8)
        rng = np.random.default_rng(1)
        onsite, n_removed = rough_edge_onsite(rib, 0.0, rng)
        assert n_removed == 0
        assert np.all(onsite == 0.0)

    def test_probability_validated(self):
        rib = ArmchairGNR(9, 4)
        with pytest.raises(ValueError):
            rough_edge_onsite(rib, 1.5, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(InvalidDeviceError):
            RealSpaceGNRDevice(12, 0)
