"""Engine registry, cross-engine parity, and cache-key regression tests.

The tolerances asserted here are the documented accuracy contract of the
mode-space engine (``docs/performance.md``):

* full rank (``n_modes=None``) reproduces real-space transmission to
  round-off (``< 1e-6`` absolute, lead-decimation noise included) for
  *any* device — smooth profiles and per-atom disorder alike;
* the default truncation keeps the transmission error in the transport
  window at the few-percent level for smooth profiles, and the
  device-level drain current within ~15% of the real-space reference;
* transversely non-uniform disorder under truncation is *not* covered:
  the rough-edge test pins that the coupling the truncation discards is
  order unity, so real space stays the reference there.
"""

import numpy as np
import pytest

from repro.atomistic.lattice import ArmchairGNR
from repro.device.engines import (
    CONTACT_BROADENING_EV,
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    AtomisticTransport,
    engine_version,
    resolve_engine,
)
from repro.device.geometry import GNRFETGeometry
from repro.device.negf_modespace import ModeSpaceGNRDevice, reduced_lead_blocks
from repro.device.negf_realspace import RealSpaceGNRDevice, rough_edge_onsite
from repro.device.sbfet import SBFETModel
from repro.device.tables import table_cache_key
from repro.errors import InvalidDeviceError


class TestEngineRegistry:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == DEFAULT_ENGINE == "semianalytic"

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "realspace")
        assert resolve_engine("modespace") == "modespace"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "modespace")
        assert resolve_engine() == "modespace"
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine() == DEFAULT_ENGINE

    def test_unknown_raises(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(InvalidDeviceError):
            resolve_engine("tight-binding")
        monkeypatch.setenv(ENGINE_ENV, "nope")
        with pytest.raises(InvalidDeviceError):
            resolve_engine()

    def test_versions_distinct(self):
        versions = {engine_version(e) for e in ENGINES}
        assert len(versions) == len(ENGINES)

    def test_adapter_rejects_semianalytic(self):
        with pytest.raises(InvalidDeviceError):
            AtomisticTransport("semianalytic", 12, 15.0)


class TestCacheKeyRegression:
    """Engine choice and n_modes must key the table cache (satellite 2)."""

    def setup_method(self):
        self.geometry = GNRFETGeometry()
        self.vg = np.array([0.0, 0.5])
        self.vd = np.array([0.0, 0.5])

    def test_engines_key_differently(self):
        keys = {table_cache_key(self.geometry, self.vg, self.vd, None,
                                engine=e) for e in ENGINES}
        assert len(keys) == len(ENGINES)

    def test_n_modes_keys_differently(self):
        k_none = table_cache_key(self.geometry, self.vg, self.vd, None,
                                 engine="modespace")
        k_four = table_cache_key(self.geometry, self.vg, self.vd, 4,
                                 engine="modespace")
        assert k_none != k_four

    def test_default_engine_explicit_and_implicit_agree(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        implicit = table_cache_key(self.geometry, self.vg, self.vd, None)
        explicit = table_cache_key(self.geometry, self.vg, self.vd, None,
                                   engine="semianalytic")
        assert implicit == explicit


class TestTransportParity:
    """Mode space vs real space at the transport level."""

    ENERGIES = np.linspace(-1.0, 1.0, 41)

    def test_full_rank_exact_pristine(self):
        rs = RealSpaceGNRDevice(12, 10).transport(self.ENERGIES)
        ms = ModeSpaceGNRDevice(12, 10, n_modes=None).transport(self.ENERGIES)
        assert np.max(np.abs(rs.transmission - ms.transmission)) < 1e-6

    def test_full_rank_exact_barrier(self):
        profile = np.concatenate([np.zeros(3), np.full(6, 0.3), np.zeros(3)])
        from repro.device.negf_realspace import longitudinal_onsite

        ribbon = ArmchairGNR(12, n_cells=12)
        rs = RealSpaceGNRDevice(
            12, 12, onsite_ev=longitudinal_onsite(ribbon, profile)
        ).transport(self.ENERGIES)
        ms = ModeSpaceGNRDevice(
            12, 12, onsite_ev=profile, n_modes=None).transport(self.ENERGIES)
        assert np.max(np.abs(rs.transmission - ms.transmission)) < 1e-6

    def test_truncated_accuracy_in_window(self):
        """Documented contract: few-percent T error over the first two
        subbands with n_modes=4 on a smooth barrier."""
        profile = np.concatenate([np.zeros(3), np.full(6, 0.3), np.zeros(3)])
        from repro.device.negf_realspace import longitudinal_onsite

        ribbon = ArmchairGNR(12, n_cells=12)
        rs = RealSpaceGNRDevice(
            12, 12, onsite_ev=longitudinal_onsite(ribbon, profile)
        ).transport(self.ENERGIES)
        device = ModeSpaceGNRDevice(12, 12, onsite_ev=profile, n_modes=4)
        ms = device.transport(self.ENERGIES)
        err = np.max(np.abs(rs.transmission - ms.transmission))
        assert err < 0.05
        # ... and the reduction is genuinely smaller than the full basis.
        assert device.n_retained < 24

    def test_full_rank_exact_rough_edge(self):
        """Per-atom disorder projects exactly at full rank: the coupled
        mode-space equations carry the full inter-mode coupling."""
        rng = np.random.default_rng(7)
        ribbon = ArmchairGNR(12, n_cells=12)
        onsite, n_removed = rough_edge_onsite(ribbon, 0.15, rng)
        assert n_removed > 0
        rs = RealSpaceGNRDevice(12, 12, onsite_ev=onsite).transport(
            self.ENERGIES)
        ms = ModeSpaceGNRDevice(12, 12, onsite_ev=onsite,
                                n_modes=None).transport(self.ENERGIES)
        assert np.max(np.abs(rs.transmission - ms.transmission)) < 1e-6

    def test_truncation_not_valid_for_rough_edge(self):
        """The coupling a vacancy induces to discarded blocks is order
        unity — truncated mode space must NOT be trusted there, and this
        pins that the error is large (real space stays the reference)."""
        rng = np.random.default_rng(7)
        ribbon = ArmchairGNR(12, n_cells=12)
        onsite, _ = rough_edge_onsite(ribbon, 0.15, rng)
        rs = RealSpaceGNRDevice(12, 12, onsite_ev=onsite).transport(
            self.ENERGIES)
        ms = ModeSpaceGNRDevice(12, 12, onsite_ev=onsite,
                                n_modes=4).transport(self.ENERGIES)
        assert np.max(np.abs(rs.transmission - ms.transmission)) > 0.1

    def test_per_atom_shape_validated(self):
        with pytest.raises(InvalidDeviceError):
            ModeSpaceGNRDevice(12, 10, onsite_ev=np.zeros(11))

    def test_reduced_lead_blocks_cached(self):
        a = reduced_lead_blocks(12, 4)
        b = reduced_lead_blocks(12, 4)
        assert a[0] is b[0]
        assert not a[0].flags.writeable


class TestDeviceLevelParity:
    """Engines through the SBFET device model (satellite 3, I-V leg)."""

    def test_dispatch_wiring(self):
        geometry = GNRFETGeometry()
        assert SBFETModel(geometry)._atomistic is None
        ms = SBFETModel(geometry, engine="modespace")
        assert ms.engine == "modespace"
        assert ms._atomistic is not None
        assert ms._atomistic.engine == "modespace"
        # Real space always carries the full basis.
        rs = SBFETModel(geometry, engine="realspace")
        assert rs._atomistic.n_modes is None

    def test_adapter_transmission_matches_engines(self):
        """The adapter's WBL-contact transmission agrees between the two
        atomistic engines at full rank (identical contacts by
        construction: U^T (-i Gamma/2 I) U = -i Gamma/2 I_m)."""
        energies = np.linspace(-0.8, 0.8, 31)
        x = np.linspace(0.0, 15.0, 61)
        profile = 0.3 * np.exp(-((x - 7.5) / 3.0) ** 2)
        rs = AtomisticTransport("realspace", 12, 15.0)
        ms = AtomisticTransport("modespace", 12, 15.0, n_modes=None)
        t_rs = rs.transmission(energies, profile, x)
        t_ms = ms.transmission(energies, profile, x)
        assert rs.n_cells == ms.n_cells == 35
        assert np.max(np.abs(t_rs - t_ms)) < 1e-8

    def test_modespace_current_tracks_realspace(self):
        """Drain current of the truncated mode-space engine within the
        documented 15% of the real-space reference at one ON bias."""
        geometry = GNRFETGeometry()
        i_ms = SBFETModel(geometry, engine="modespace").solve_bias(
            0.5, 0.5).current_a
        i_rs = SBFETModel(geometry, engine="realspace").solve_bias(
            0.5, 0.5).current_a
        assert i_rs != 0.0
        assert abs(i_ms - i_rs) / abs(i_rs) < 0.15

    def test_contact_broadening_default(self):
        assert CONTACT_BROADENING_EV == pytest.approx(1.35, abs=1e-12)
