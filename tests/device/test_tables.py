"""Tests for device lookup tables: interpolation, offsets, composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.tables import DeviceTable
from repro.errors import TableRangeError


def _toy_table(gate_offset=0.0):
    """Analytic separable table: I = vg * vd, Q = vg + 2 vd."""
    vg = np.linspace(-0.4, 1.0, 15)
    vd = np.linspace(0.0, 0.8, 9)
    gg, dd = np.meshgrid(vg, vd, indexing="ij")
    return DeviceTable(vg=vg, vd=vd, current_a=gg * dd,
                       charge_c=gg + 2 * dd, gate_offset_v=gate_offset,
                       label="toy")


class TestInterpolation:
    def test_exact_at_nodes(self):
        t = _toy_table()
        for vg in (-0.4, 0.0, 0.5, 1.0):
            for vd in (0.0, 0.4, 0.8):
                assert t.current(vg, vd) == pytest.approx(vg * vd, abs=1e-12)

    def test_bilinear_exact_for_bilinear_function(self):
        t = _toy_table()
        assert t.current(0.33, 0.17) == pytest.approx(0.33 * 0.17, abs=1e-9)
        assert t.charge(0.61, 0.29) == pytest.approx(0.61 + 0.58, abs=1e-9)

    def test_derivatives_match_function(self):
        t = _toy_table()
        i, di_dvg, di_dvd = t.current_and_derivatives(0.3, 0.25)
        assert di_dvg == pytest.approx(0.25, abs=1e-9)
        assert di_dvd == pytest.approx(0.3, abs=1e-9)

    def test_clamps_outside_range(self):
        t = _toy_table()
        assert t.current(5.0, 0.4) == pytest.approx(1.0 * 0.4, abs=1e-9)

    def test_check_range_raises(self):
        t = _toy_table()
        with pytest.raises(TableRangeError):
            t.check_range(5.0, 0.4)
        with pytest.raises(TableRangeError):
            t.check_range(0.5, 2.0)
        t.check_range(0.5, 0.5)  # in range: no raise

    @given(st.floats(min_value=-0.4, max_value=1.0),
           st.floats(min_value=0.0, max_value=0.8))
    @settings(max_examples=50)
    def test_value_within_cell_bounds(self, vg, vd):
        """Bilinear interpolation never overshoots the corner values."""
        t = _toy_table()
        v = t.current(vg, vd)
        assert t.current_a.min() - 1e-9 <= v <= t.current_a.max() + 1e-9

    def test_scalar_and_array_paths_agree(self):
        t = _toy_table()
        vg = np.array([0.123, 0.77, -0.2])
        vd = np.array([0.05, 0.33, 0.6])
        arr = t.current(vg, vd)
        for k in range(3):
            assert t.current(float(vg[k]), float(vd[k])) == pytest.approx(
                float(arr[k]), abs=1e-12)
        c_arr = t.capacitances(vg, vd)
        for k in range(3):
            cs, cd = t.capacitances(float(vg[k]), float(vd[k]))
            assert cs == pytest.approx(float(c_arr[0][k]), abs=1e-12)
            assert cd == pytest.approx(float(c_arr[1][k]), abs=1e-12)


class TestNegativeVds:
    def test_mirroring_antisymmetry(self):
        """I(vgs, -vds) = -I(vgs + vds, vds) by source/drain exchange."""
        t = _toy_table()
        i_neg = t.current(0.3, -0.2)
        i_mir = -t.current(0.3 + 0.2, 0.2)
        assert i_neg == pytest.approx(i_mir, abs=1e-12)

    def test_derivative_consistency_fd(self):
        t = _toy_table()
        h = 1e-6
        _, di_dvg, di_dvd = t.current_and_derivatives(0.3, -0.2)
        fd_g = (t.current(0.3 + h, -0.2) - t.current(0.3 - h, -0.2)) / (2 * h)
        fd_d = (t.current(0.3, -0.2 + h) - t.current(0.3, -0.2 - h)) / (2 * h)
        assert di_dvg == pytest.approx(fd_g, abs=1e-5)
        assert di_dvd == pytest.approx(fd_d, abs=1e-5)

    def test_current_continuous_at_zero_vds(self):
        t = _toy_table()
        assert t.current(0.4, 1e-9) == pytest.approx(
            t.current(0.4, -1e-9), abs=1e-7)


class TestGateOffset:
    def test_offset_shifts_curve_left(self):
        """Positive offset: the device sees vgs + offset, i.e. turns on
        earlier (V_T drops)."""
        t = _toy_table()
        t_off = t.with_gate_offset(0.2)
        assert t_off.current(0.3, 0.5) == pytest.approx(
            t.current(0.5, 0.5), abs=1e-12)

    def test_offset_immutable(self):
        t = _toy_table()
        t2 = t.with_gate_offset(0.1)
        assert t.gate_offset_v == 0.0
        assert t2.gate_offset_v == 0.1


class TestCapacitances:
    def test_paper_formulas(self):
        """C_GD = |dQ/dVD|, C_GS = |dQ/dVG| - |dQ/dVD| for Q = vg + 2 vd:
        C_GD = 2, C_GS = max(1 - 2, 0) = 0."""
        t = _toy_table()
        cgs, cgd = t.capacitances(0.3, 0.3)
        assert cgd == pytest.approx(2.0, abs=1e-9)
        assert cgs == pytest.approx(0.0, abs=1e-9)

    def test_nonnegative(self):
        t = _toy_table()
        cgs, cgd = t.capacitances(0.1, 0.7)
        assert cgs >= 0.0 and cgd >= 0.0


class TestComposition:
    def test_compose_sums(self):
        t = _toy_table()
        double = DeviceTable.compose([t, t])
        assert double.current(0.4, 0.3) == pytest.approx(
            2 * t.current(0.4, 0.3), abs=1e-12)
        assert double.charge(0.4, 0.3) == pytest.approx(
            2 * t.charge(0.4, 0.3), abs=1e-12)

    def test_scaled_equivalent_to_compose(self):
        t = _toy_table()
        assert np.allclose(t.scaled(4.0).current_a,
                           DeviceTable.compose([t] * 4).current_a)

    def test_compose_rejects_mismatched_axes(self):
        t = _toy_table()
        other = DeviceTable(vg=t.vg + 0.1, vd=t.vd,
                            current_a=t.current_a, charge_c=t.charge_c)
        with pytest.raises(ValueError):
            DeviceTable.compose([t, other])

    def test_compose_rejects_mismatched_offsets(self):
        t = _toy_table()
        with pytest.raises(ValueError):
            DeviceTable.compose([t, t.with_gate_offset(0.1)])

    def test_compose_empty_rejected(self):
        with pytest.raises(ValueError):
            DeviceTable.compose([])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = _toy_table(gate_offset=0.15)
        path = tmp_path / "table.npz"
        t.save(path)
        loaded = DeviceTable.load(path)
        assert np.allclose(loaded.current_a, t.current_a)
        assert np.allclose(loaded.charge_c, t.charge_c)
        assert loaded.gate_offset_v == 0.15
        assert loaded.label == "toy"


class TestValidation:
    def test_rejects_unsorted_axes(self):
        with pytest.raises(ValueError):
            DeviceTable(vg=np.array([0.0, -0.1, 0.2]),
                        vd=np.array([0.0, 0.1]),
                        current_a=np.zeros((3, 2)),
                        charge_c=np.zeros((3, 2)))

    def test_rejects_wrong_grid_shape(self):
        with pytest.raises(ValueError):
            DeviceTable(vg=np.array([0.0, 0.1]), vd=np.array([0.0, 0.1]),
                        current_a=np.zeros((3, 2)),
                        charge_c=np.zeros((3, 2)))
