"""SCF warm-start continuation: same physics, fewer iterations.

Sweep drivers thread converged midgaps into adjacent bias points
(``initial_midgap_ev``).  The contract under test: (a) the converged
answer is the cold answer within the solver tolerance, (b) the escape
hatch ``REPRO_NO_WARMSTART`` restores cold starts bit-for-bit, (c) the
continuation actually reduces iterations on a sweep, and (d) the
cold/warm observability counters tell the two populations apart.
"""

import numpy as np
import pytest

from repro import obs
from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv
from repro.device.negf_device import NEGFDevice
from repro.device.sbfet import SBFETModel
from repro.runtime import warmstart_enabled


@pytest.fixture()
def model():
    return SBFETModel(GNRFETGeometry())


class TestSBFETWarmStart:
    def test_root_matches_cold_within_tolerance(self, model):
        """Warm and cold bisection land on the same root: both are within
        tol_ev of the exact fixed point, so they differ by < 2 tol."""
        tol = 1e-6
        vgs = np.linspace(0.0, 0.75, 13)
        prev = None
        for vg in vgs:
            cold = model.solve_bias(float(vg), 0.5)
            warm = model.solve_bias(float(vg), 0.5, initial_midgap_ev=prev)
            assert abs(warm.midgap_ev - cold.midgap_ev) < 2.0 * tol
            # The current is a smooth function of the midgap with
            # logarithmic slope >= 1/kT, so a < 2 tol midgap shift moves
            # it by a relative ~1e-4 at most.
            assert warm.current_a == pytest.approx(
                cold.current_a, rel=1e-3, abs=1e-18)
            prev = warm.midgap_ev

    def test_sweep_iterations_drop(self, model):
        """Continuation along a 13-point sweep cuts total bisection
        iterations by >= 30% (the acceptance threshold of the solver
        acceleration work)."""
        vgs = np.linspace(0.0, 0.75, 13)
        cold_total = sum(
            model.solve_bias(float(vg), 0.5).iterations for vg in vgs)
        warm_total = 0
        mids: list[float] = []
        for j, vg in enumerate(vgs):
            if j >= 2:
                guess = 2.0 * mids[-1] - mids[-2]
            elif j == 1:
                guess = mids[0]
            else:
                guess = None
            sol = model.solve_bias(float(vg), 0.5, initial_midgap_ev=guess)
            warm_total += sol.iterations
            mids.append(sol.midgap_ev)
        assert warm_total <= 0.7 * cold_total

    def test_escape_hatch_restores_cold_bitwise(self, model, monkeypatch):
        cold = model.solve_bias(0.4, 0.5)
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        assert not warmstart_enabled()
        gated = model.solve_bias(0.4, 0.5,
                                 initial_midgap_ev=cold.midgap_ev + 0.01)
        assert gated.midgap_ev == cold.midgap_ev
        assert gated.current_a == cold.current_a
        assert gated.iterations == cold.iterations

    def test_bad_guess_falls_back_to_cold_bracket(self, model):
        """A wildly wrong guess must not corrupt the root — the bracket
        expansion gives up and cold-starts."""
        cold = model.solve_bias(0.3, 0.4)
        warm = model.solve_bias(0.3, 0.4, initial_midgap_ev=cold.midgap_ev - 5.0)
        assert abs(warm.midgap_ev - cold.midgap_ev) < 2e-6


class TestSweepDrivers:
    def test_serial_equals_parallel_with_warmstart(self):
        """The row is the unit of continuation, so worker count cannot
        change results."""
        geometry = GNRFETGeometry()
        vg = np.linspace(0.0, 0.6, 3)
        vd = np.linspace(0.0, 0.6, 4)
        serial = sweep_iv(geometry, vg, vd, workers=1)
        parallel = sweep_iv(geometry, vg, vd, workers=2)
        assert np.array_equal(serial.current_a, parallel.current_a)
        assert np.array_equal(serial.midgap_ev, parallel.midgap_ev)

    def test_sweep_matches_cold_pointwise(self, model, monkeypatch):
        geometry = GNRFETGeometry()
        vg = np.array([0.2, 0.5])
        vd = np.linspace(0.0, 0.6, 5)
        warm = sweep_iv(geometry, vg, vd)
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        cold = sweep_iv(geometry, vg, vd)
        assert np.allclose(warm.midgap_ev, cold.midgap_ev, atol=2e-6)
        assert np.allclose(warm.current_a, cold.current_a,
                           rtol=1e-3, atol=1e-18)


class TestNEGFDeviceWarmStart:
    @pytest.fixture(scope="class")
    def device(self):
        return NEGFDevice(GNRFETGeometry(n_index=12), n_x=31, n_y=9,
                          n_modes=1)

    def test_warm_profile_converges_to_cold_answer(self, device):
        tol = 1e-3
        cold = device.solve(0.4, 0.1, tolerance_ev=tol)
        warm = device.solve(0.4, 0.1, tolerance_ev=tol,
                            initial_midgap_ev=cold.midgap_ev)
        assert np.max(np.abs(warm.midgap_ev - cold.midgap_ev)) < 2.0 * tol
        assert warm.scf.iterations <= cold.scf.iterations

    def test_profile_shape_validated(self, device):
        with pytest.raises(ValueError, match="initial_midgap_ev"):
            device.solve(0.4, 0.1, initial_midgap_ev=np.zeros(3))

    def test_escape_hatch(self, device, monkeypatch):
        cold = device.solve(0.2, 0.1)
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        gated = device.solve(0.2, 0.1, initial_midgap_ev=cold.midgap_ev)
        assert np.array_equal(gated.midgap_ev, cold.midgap_ev)
        assert gated.scf.iterations == cold.scf.iterations


class TestWarmStartCounters:
    @pytest.fixture()
    def traced(self, monkeypatch):
        monkeypatch.setattr(obs, "ACTIVE", True)
        obs.reset()
        yield
        obs.reset()

    def test_cold_and_warm_solves_counted_separately(self, traced, model):
        cold = model.solve_bias(0.3, 0.5)
        model.solve_bias(0.35, 0.5, initial_midgap_ev=cold.midgap_ev)
        counters = obs.snapshot()["counters"]
        assert counters["scf.cold_solves"] == 1
        assert counters["scf.warm_solves"] == 1
        assert counters["scf.warm_starts"] == 1
        assert counters["scf.cold_iterations"] == cold.iterations
        assert counters["scf.warm_iterations"] < counters["scf.cold_iterations"]

    def test_gated_warm_start_counts_as_cold(self, traced, model,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        model.solve_bias(0.3, 0.5, initial_midgap_ev=0.1)
        counters = obs.snapshot()["counters"]
        assert counters.get("scf.warm_starts", 0) == 0
        assert counters["scf.cold_solves"] == 1
