"""Fault-injection recovery across the sweep layers (ISSUE 5 acceptance).

Forced SCF failures mid-sweep must yield NaN-masked cells with matching
``FailureRecord``s (identically serial and parallel), ``strict=True``
must keep today's raise-on-first-failure behavior, a killed-then-resumed
sweep must be bitwise-identical to an uninterrupted one, and a crashed
worker process must cost nothing but a recompute.
"""

import numpy as np
import pytest

from repro import obs
from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv
from repro.device.tables import build_device_table
from repro.errors import CheckpointError, ConvergenceError
from repro.runtime import faults

VG = np.linspace(0.0, 0.6, 13)
VD = np.linspace(0.0, 0.6, 5)
GEOM = GNRFETGeometry(n_index=12)


@pytest.fixture(autouse=True)
def _disarm():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted, fault-free reference sweep."""
    faults.disable()
    return sweep_iv(GEOM, VG, VD, workers=1)


def _assert_same(a, b):
    assert np.array_equal(a.current_a, b.current_a, equal_nan=True)
    assert np.array_equal(a.charge_c, b.charge_c, equal_nan=True)
    assert np.array_equal(a.midgap_ev, b.midgap_ev, equal_nan=True)


class TestQuarantine:
    def test_failed_cells_are_nan_masked_with_records(self):
        faults.enable("scf@3,17,40")
        sweep = sweep_iv(GEOM, VG, VD, workers=1)
        failed = {f.index for f in sweep.failures}
        assert failed == {3, 17, 40}
        n_vd = VD.size
        for cell in (3, 17, 40):
            i, j = divmod(cell, n_vd)
            assert np.isnan(sweep.current_a[i, j])
            assert np.isnan(sweep.charge_c[i, j])
            assert np.isnan(sweep.midgap_ev[i, j])
        # exactly those cells — everything else converged
        assert np.count_nonzero(np.isnan(sweep.current_a)) == 3
        for record in sweep.failures:
            assert record.error == "ConvergenceError"
            assert record.context["injected"] is True
            assert record.rungs_tried  # the ladder ran before giving up
            i, j = record.coords
            assert record.bias == {"vg": float(VG[i]), "vd": float(VD[j])}

    def test_serial_equals_parallel_bitwise(self):
        faults.enable("scf@3,17,40")
        serial = sweep_iv(GEOM, VG, VD, workers=1)
        faults.reset_attempts()
        parallel = sweep_iv(GEOM, VG, VD, workers=4)
        _assert_same(serial, parallel)
        assert serial.failures == parallel.failures

    def test_strict_raises_first_failure(self):
        faults.enable("scf@17")
        with pytest.raises(ConvergenceError) as err:
            sweep_iv(GEOM, VG, VD, workers=1, strict=True)
        assert err.value.context["cell_index"] == 17
        assert err.value.context["injected"] is True

    def test_capped_fault_recovers_via_ladder(self):
        """``x2`` fails the first two rungs; the third succeeds, so the
        sweep completes without quarantine."""
        obs.enable()
        faults.enable("scf@17x2")
        sweep = sweep_iv(GEOM, VG, VD, workers=1)
        assert sweep.failures == ()
        assert np.all(np.isfinite(sweep.current_a))
        counters = obs.snapshot()["counters"]
        assert counters["scf.retries"] >= 2
        assert "resilience.quarantined" not in counters

    def test_failures_reach_obs_manifest(self):
        from repro.obs.manifest import build_manifest

        obs.enable()
        faults.enable("scf@3")
        sweep_iv(GEOM, VG, VD, workers=1)
        manifest = build_manifest("test", snapshot=obs.snapshot())
        assert len(manifest["failures"]) == 1
        assert manifest["failures"][0]["index"] == 3
        assert manifest["rollups"]["cells_quarantined"] == 1
        assert manifest["rollups"]["ladders_exhausted"] >= 1


class TestCheckpointResume:
    def test_killed_then_resumed_equals_uninterrupted(self, baseline):
        # First run dies on its second checkpoint write (ordinal 1).
        faults.enable("checkpoint@1")
        with pytest.raises(CheckpointError):
            sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2)
        faults.disable()
        resumed = sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2,
                           resume=True)
        _assert_same(resumed, baseline)
        assert resumed.failures == ()

    def test_resume_skips_completed_rows(self, baseline):
        faults.enable("checkpoint@2")
        with pytest.raises(CheckpointError):
            sweep_iv(GEOM, VG, VD, workers=1, checkpoint=1)
        faults.disable()
        obs.enable()
        resumed = sweep_iv(GEOM, VG, VD, workers=1, checkpoint=1,
                           resume=True)
        _assert_same(resumed, baseline)
        counters = obs.snapshot()["counters"]
        assert counters["resilience.checkpoint_resumes"] == 1
        # two rows were checkpointed before the injected death, so the
        # resumed run writes fewer checkpoints than a fresh one would
        assert counters["resilience.checkpoint_writes"] <= VG.size - 2

    def test_completed_sweep_clears_checkpoint(self, baseline):
        sweep = sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2)
        _assert_same(sweep, baseline)
        resumed = sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2,
                           resume=True)
        _assert_same(resumed, baseline)  # nothing stale to resume from

    def test_resume_with_quarantine_keeps_failure_records(self):
        faults.enable("scf@3;checkpoint@1")
        with pytest.raises(CheckpointError):
            sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2)
        faults.enable("scf@3")  # keep the cell failing after resume
        faults.reset_attempts()
        resumed = sweep_iv(GEOM, VG, VD, workers=1, checkpoint=2,
                           resume=True)
        assert {f.index for f in resumed.failures} == {3}
        assert np.isnan(resumed.current_a[0, 3])


class TestWorkerCrashRecovery:
    def test_crashed_worker_rows_are_recomputed(self, baseline):
        obs.enable()
        faults.enable("worker@5")
        sweep = sweep_iv(GEOM, VG, VD, workers=2)
        _assert_same(sweep, baseline)
        assert sweep.failures == ()
        counters = obs.snapshot()["counters"]
        assert counters["resilience.worker_crash_recoveries"] == 1
        assert counters["resilience.rows_recomputed"] >= 1

    def test_strict_propagates_pool_failure(self):
        from repro.errors import ParallelMapError

        faults.enable("worker@5")
        with pytest.raises(ParallelMapError):
            sweep_iv(GEOM, VG, VD, workers=2, strict=True)


class TestTableBuildQuarantine:
    def test_failed_table_is_nan_masked_and_never_cached(self):
        vg = np.linspace(0.0, 0.4, 5)
        vd = np.array([0.0, 0.2, 0.4])
        geom = GNRFETGeometry(n_index=9)
        faults.enable("scf@4")
        table = build_device_table(geom, vg, vd)
        assert len(table.failures) == 1
        assert np.isnan(table.current_a[1, 1])  # cell 4 of a 5x3 grid
        faults.disable()
        rebuilt = build_device_table(geom, vg, vd)
        # neither the in-process memo nor the disk store kept the holes
        assert rebuilt.failures == ()
        assert np.all(np.isfinite(rebuilt.current_a))

    def test_strict_table_build_raises(self):
        vg = np.linspace(0.0, 0.4, 5)
        vd = np.array([0.0, 0.2, 0.4])
        faults.enable("scf@4")
        with pytest.raises(ConvergenceError):
            build_device_table(GNRFETGeometry(n_index=9), vg, vd,
                               use_cache=False, strict=True)
