"""Tests for device specifications."""

import pytest

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.errors import InvalidDeviceError


class TestChargeImpurity:
    def test_mirror_flips_charge(self):
        imp = ChargeImpurity(charge_e=-2.0, position_nm=1.5, height_nm=0.4)
        mirrored = imp.mirrored()
        assert mirrored.charge_e == 2.0
        assert mirrored.position_nm == 1.5
        assert mirrored.height_nm == 0.4

    def test_paper_default_placement(self):
        """Impurity near the source, 0.4 nm from the GNR surface."""
        imp = ChargeImpurity(charge_e=1.0)
        assert imp.height_nm == pytest.approx(0.4)
        assert imp.position_nm < 2.0

    def test_validation(self):
        with pytest.raises(InvalidDeviceError):
            ChargeImpurity(charge_e=1.0, height_nm=0.0)
        with pytest.raises(InvalidDeviceError):
            ChargeImpurity(charge_e=1.0, position_nm=-1.0)


class TestGNRFETGeometry:
    def test_paper_defaults(self):
        g = GNRFETGeometry()
        assert g.n_index == 12
        assert g.channel_length_nm == 15.0
        assert g.oxide_thickness_nm == 1.5
        assert g.eps_ox == pytest.approx(3.9)

    def test_schottky_barrier_is_half_gap(self):
        """Phi_Bn = Phi_Bp = E_g / 2 (paper Section 2)."""
        g = GNRFETGeometry(n_index=12)
        assert g.schottky_barrier_ev == pytest.approx(
            g.band_gap_ev / 2.0, abs=1e-12)

    def test_width_follows_index(self):
        assert (GNRFETGeometry(n_index=18).width_nm
                > GNRFETGeometry(n_index=9).width_nm)

    def test_gate_separation(self):
        g = GNRFETGeometry()
        assert g.gate_separation_nm == pytest.approx(3.35, abs=0.01)

    def test_insulator_capacitance_scale(self):
        """Double-gate SiO2 at 1.5 nm on a ~1.4+1.5 nm effective width:
        several 1e-20 F/nm."""
        c = GNRFETGeometry(n_index=12).insulator_capacitance_f_per_nm
        assert 5e-20 < c < 2e-19

    def test_natural_length_near_textbook(self):
        g = GNRFETGeometry()
        assert g.natural_length_nm == pytest.approx(
            g.natural_length_theoretical_nm(), rel=0.6)

    def test_with_helpers_produce_new_objects(self):
        g = GNRFETGeometry()
        g9 = g.with_index(9)
        assert g9.n_index == 9 and g.n_index == 12
        imp = ChargeImpurity(charge_e=1.0)
        gi = g.with_impurity(imp)
        assert gi.impurity is imp and g.impurity is None

    def test_validation(self):
        with pytest.raises(InvalidDeviceError):
            GNRFETGeometry(channel_length_nm=0.0)
        with pytest.raises(InvalidDeviceError):
            GNRFETGeometry(gate_coupling=1.5)
        with pytest.raises(InvalidDeviceError):
            GNRFETGeometry(drain_coupling=-0.1)
        with pytest.raises(InvalidDeviceError):
            GNRFETGeometry(natural_length_nm=0.0)
        with pytest.raises(InvalidDeviceError):
            GNRFETGeometry(n_index=1)

    def test_hashable_for_table_cache(self):
        a = GNRFETGeometry()
        b = GNRFETGeometry()
        assert hash(a) == hash(b)
        assert a == b
