"""Device-level reproduction anchors (paper quantities A1-A7).

These assert the *shape contract* documented in
``repro.device.calibration``: orderings, factors within generous bands,
and qualitative behaviours the paper states about intrinsic GNRFETs.
"""

import numpy as np
import pytest

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.sbfet import SBFETModel
from repro.device.vt_extraction import extract_vt_linear


@pytest.fixture(scope="module")
def m12():
    return SBFETModel(GNRFETGeometry(n_index=12))


class TestAnchorA1_OnCurrent:
    def test_ion_scale(self, m12):
        """Paper: I_on ~ 6300 uA/um * ~1 nm => ~6.3 uA per ribbon at
        V_D = 0.5 V.  We require the same order (factor 2 band)."""
        ion = m12.current_at(0.75, 0.5)
        assert 2.5e-6 < ion < 13e-6


class TestAnchorA2_Threshold:
    def test_vt_near_0p3(self, m12):
        vgs = np.linspace(0.0, 0.8, 33)
        ids = np.array([m12.current_at(v, 0.05) for v in vgs])
        vt = extract_vt_linear(vgs, ids, vd=0.05)
        assert vt == pytest.approx(0.30, abs=0.05)

    def test_offset_shifts_vt_by_equal_amount(self, m12):
        """"V_T changes by an amount equal to the off-set" (Fig. 2b)."""
        vgs = np.linspace(0.0, 0.8, 33)
        ids0 = np.array([m12.current_at(v, 0.05) for v in vgs])
        vt0 = extract_vt_linear(vgs, ids0, vd=0.05)
        offset = 0.2
        ids_shift = np.array([m12.current_at(v + offset, 0.05) for v in vgs])
        vt_shift = extract_vt_linear(vgs, ids_shift, vd=0.05)
        assert vt0 - vt_shift == pytest.approx(offset, abs=0.04)


class TestAnchorA4_WidthLeakage:
    def test_on_off_ordering_with_width(self):
        """N=9's gap supports a high on/off ratio; N=18's does not."""
        ratios = {}
        for n in (9, 12, 18):
            m = SBFETModel(GNRFETGeometry(n_index=n))
            vgs = np.linspace(0.0, 0.75, 26)
            currents = np.array([m.current_at(v, 0.5) for v in vgs])
            ratios[n] = currents.max() / currents.min()
        assert ratios[9] > ratios[12] > ratios[18]
        assert ratios[9] > 100.0
        assert ratios[18] < 20.0

    def test_leakage_orders_of_magnitude_with_width(self):
        """Conclusions: "variation of the channel width by a couple of
        Angstrom changes the leakage current by orders of magnitude"."""
        def min_leak(n):
            m = SBFETModel(GNRFETGeometry(n_index=n))
            vgs = np.linspace(0.0, 0.75, 26)
            return min(m.current_at(v, 0.5) for v in vgs)

        assert min_leak(18) / min_leak(9) > 100.0


class TestAnchorA5_Capacitance:
    def test_wider_ribbon_more_on_state_capacitance(self):
        def cg_on(n):
            m = SBFETModel(GNRFETGeometry(n_index=n))
            def q(vg):
                u, _ = m.solve_midgap_ev(vg, 0.5)
                return m.channel_charge_c(u, 0.5)
            return (q(0.65) - q(0.55)) / 0.1

        assert cg_on(18) > cg_on(9)


class TestAnchorA6_Impurity:
    def test_minus2q_large_ion_drop(self, m12):
        """A single -2q Coulomb impurity lowers I_on by a large factor
        (paper: ~6x; we accept 3-10x)."""
        m_imp = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-2.0)))
        drop = m12.current_at(0.75, 0.5) / m_imp.current_at(0.75, 0.5)
        assert 3.0 < drop < 10.0

    def test_asymmetry_positive_charge_mild(self, m12):
        """"+2q ... show a relatively smaller variation from the ideal
        device compared to that with the -2q negative charge impurity"."""
        m_neg = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-2.0)))
        m_pos = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=+2.0)))
        ion = m12.current_at(0.75, 0.5)
        dev_neg = abs(np.log(m_neg.current_at(0.75, 0.5) / ion))
        dev_pos = abs(np.log(m_pos.current_at(0.75, 0.5) / ion))
        assert dev_neg > 2.0 * dev_pos

    def test_single_charge_lowers_on_current_tens_of_percent(self, m12):
        """Conclusions: "a single Coulomb charge impurity can lower the
        FET on-current by about 30%" (we accept 20-80%)."""
        m_imp = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-1.0)))
        rel = m_imp.current_at(0.75, 0.5) / m12.current_at(0.75, 0.5)
        assert 0.2 < rel < 0.8
