"""Tests for I-V sweep drivers."""

import numpy as np
import pytest

from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv


@pytest.fixture(scope="module")
def small_sweep():
    vg = np.linspace(0.0, 0.6, 7)
    vd = np.array([0.0, 0.25, 0.5])
    return sweep_iv(GNRFETGeometry(n_index=12), vg, vd)


class TestSweep:
    def test_shapes(self, small_sweep):
        assert small_sweep.current_a.shape == (7, 3)
        assert small_sweep.charge_c.shape == (7, 3)
        assert small_sweep.midgap_ev.shape == (7, 3)

    def test_zero_vd_column_is_zero_current(self, small_sweep):
        assert np.allclose(small_sweep.current_a[:, 0], 0.0)

    def test_current_curve_selects_nearest(self, small_sweep):
        curve = small_sweep.current_curve(0.26)
        assert np.allclose(curve, small_sweep.current_a[:, 1])

    def test_on_off_ratio(self, small_sweep):
        ratio = small_sweep.on_off_ratio(0.5)
        assert ratio > 1.0

    def test_midgap_monotone_in_vg(self, small_sweep):
        """The converged channel level must fall monotonically with
        gate voltage at fixed drain bias."""
        assert np.all(np.diff(small_sweep.midgap_ev[:, 1]) < 0.0)

    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            sweep_iv(GNRFETGeometry(), np.array([0.2, 0.1]),
                     np.array([0.0, 0.5]))

    def test_rejects_2d_grid(self):
        with pytest.raises(ValueError):
            sweep_iv(GNRFETGeometry(), np.zeros((2, 2)),
                     np.array([0.0, 0.5]))
