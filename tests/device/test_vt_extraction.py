"""Tests for linear-extrapolation V_T extraction."""

import numpy as np
import pytest

from repro.device.vt_extraction import extract_vt_linear
from repro.errors import AnalysisError


def _alpha_law(vg, vt, slope=1e-6):
    """Synthetic above-threshold linear device."""
    return np.clip(vg - vt, 0.0, None) * slope


class TestExtraction:
    def test_recovers_linear_threshold(self):
        vg = np.linspace(0.0, 1.0, 101)
        ids = _alpha_law(vg, vt=0.35)
        assert extract_vt_linear(vg, ids) == pytest.approx(0.35, abs=0.01)

    def test_vd_correction(self):
        vg = np.linspace(0.0, 1.0, 101)
        ids = _alpha_law(vg, vt=0.35)
        assert extract_vt_linear(vg, ids, vd=0.1) == pytest.approx(
            0.30, abs=0.01)

    def test_ambipolar_curve_uses_electron_branch(self):
        """A V-shaped ambipolar curve must extrapolate the right-hand
        (electron) branch, not the hole branch."""
        vg = np.linspace(0.0, 1.0, 201)
        electron = _alpha_law(vg, 0.4)
        hole = _alpha_law(0.8 - vg, 0.2)  # rises toward low vg
        ids = electron + hole + 1e-12
        vt = extract_vt_linear(vg, ids)
        assert vt == pytest.approx(0.4, abs=0.03)

    def test_hole_branch_option(self):
        vg = np.linspace(-1.0, 0.0, 101)
        ids = _alpha_law(-vg, vt=0.3)  # p-type turn-on toward negative vg
        vt = extract_vt_linear(vg, ids, branch="hole")
        assert vt == pytest.approx(0.3, abs=0.02)

    def test_rejects_flat_curve(self):
        vg = np.linspace(0, 1, 50)
        with pytest.raises(AnalysisError):
            extract_vt_linear(vg, np.full(50, 1e-9) - np.linspace(0, 1e-10, 50))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            extract_vt_linear(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            extract_vt_linear(np.zeros(10), np.zeros(9))
        with pytest.raises(ValueError):
            extract_vt_linear(np.linspace(0, 1, 10), np.zeros(10),
                              branch="sideways")
