"""Tests for the reference NEGF + Poisson device simulator.

These use coarse grids (the engine is the reference path, not the
production path); the physics checks mirror the paper's Section 2 and
Fig. 5(a).
"""

import numpy as np
import pytest

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.negf_device import NEGFDevice, _scalar_chain_rgf
from repro.device.sbfet import SBFETModel
from repro.negf.greens import recursive_greens_function
from repro.negf.self_energy import lead_self_energy_1d


class TestScalarChainRGF:
    def test_matches_generic_matrix_kernel(self):
        """The vectorized scalar RGF must agree with the generic
        block-matrix kernel on a random chain."""
        rng = np.random.default_rng(0)
        n = 14
        onsite = rng.normal(scale=0.3, size=n)
        t_hop = 1.1
        energies = np.linspace(-1.5, 1.5, 7)
        sig_l = np.array([lead_self_energy_1d(e, 0.0, t_hop) for e in energies])
        sig_r = np.array([lead_self_energy_1d(e, -0.1, t_hop) for e in energies])
        out = _scalar_chain_rgf(energies, onsite, t_hop, sig_l, sig_r)

        diag = [np.array([[v]]) for v in onsite]
        coup = [np.array([[-t_hop]])] * (n - 1)
        for k, e in enumerate(energies):
            res = recursive_greens_function(
                e, diag, coup, np.array([[sig_l[k]]]),
                np.array([[sig_r[k]]]), eta_ev=1e-8)
            assert out.transmission[k] == pytest.approx(
                res.transmission, abs=1e-8)
            a_s_ref = np.array([
                float(np.abs(res.first_column[i][0, 0]) ** 2
                      * (-2 * sig_l[k].imag)) for i in range(n)])
            assert np.allclose(out.spectral_source[k], a_s_ref, atol=1e-8)

    def test_perfect_chain_unit_transmission(self):
        energies = np.array([-0.5, 0.0, 0.5])
        onsite = np.zeros(20)
        sig = np.array([lead_self_energy_1d(e, 0.0, 1.0, 1e-10)
                        for e in energies])
        out = _scalar_chain_rgf(energies, onsite, 1.0, sig, sig, 1e-10)
        assert np.allclose(out.transmission, 1.0, atol=1e-5)


@pytest.fixture(scope="module")
def coarse_device():
    return NEGFDevice(GNRFETGeometry(n_index=12), n_x=31, n_y=9,
                      coarse_step_ev=8e-3, fine_step_ev=2e-3)


class TestNEGFDevice:
    def test_converges(self, coarse_device):
        result = coarse_device.solve(0.4, 0.4)
        assert result.scf.converged

    def test_contact_band_pinning(self, coarse_device):
        """E_C at the source interface equals the Schottky barrier E_g/2
        regardless of gate bias (metal pinning)."""
        result = coarse_device.solve(0.5, 0.3)
        barrier = coarse_device.geometry.schottky_barrier_ev
        assert result.conduction_band_ev[0] == pytest.approx(barrier,
                                                             abs=0.03)
        assert result.conduction_band_ev[-1] == pytest.approx(
            barrier - 0.3, abs=0.03)

    def test_gate_modulates_current(self, coarse_device):
        i_off = coarse_device.solve(0.25, 0.5).current_a
        i_on = coarse_device.solve(0.75, 0.5).current_a
        assert i_on > 5.0 * i_off

    def test_ambipolar_hole_branch(self, coarse_device):
        """Current rises again below the ambipolar minimum."""
        i_min = coarse_device.solve(0.25, 0.5).current_a
        i_low = coarse_device.solve(-0.1, 0.5).current_a
        assert i_low > 1.5 * i_min

    def test_charge_neutrality_off_state(self, coarse_device):
        result = coarse_device.solve(0.0, 0.0)
        n = result.electron_density_per_nm
        p = result.hole_density_per_nm
        assert np.all(n >= 0.0) and np.all(p >= 0.0)
        # At the symmetric bias point electrons and holes nearly balance.
        assert abs(n.sum() - p.sum()) < 0.3 * max(n.sum(), p.sum(), 1e-6)


class TestImpurityBandProfile:
    def test_negative_impurity_raises_barrier(self):
        """Paper Fig. 5(a): a negative charge increases the barrier
        height and thickness; positive decreases it."""
        base = NEGFDevice(GNRFETGeometry(n_index=12), n_x=31, n_y=9)
        neg = NEGFDevice(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-2.0)),
            n_x=31, n_y=9)
        pos = NEGFDevice(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=+2.0)),
            n_x=31, n_y=9)
        ec_base = base.solve(0.5, 0.5).conduction_band_ev.max()
        ec_neg = neg.solve(0.5, 0.5).conduction_band_ev.max()
        ec_pos = pos.solve(0.5, 0.5).conduction_band_ev.max()
        assert ec_neg > ec_base + 0.2
        assert ec_pos <= ec_base + 0.02

    def test_negative_impurity_cuts_current(self):
        base = NEGFDevice(GNRFETGeometry(n_index=12), n_x=31, n_y=9)
        neg = NEGFDevice(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-2.0)),
            n_x=31, n_y=9)
        i_base = base.solve(0.6, 0.5).current_a
        i_neg = neg.solve(0.6, 0.5).current_a
        assert i_neg < 0.5 * i_base


class TestEngineCrossValidation:
    def test_fast_engine_tracks_negf_shape(self):
        """The production fast engine and the reference NEGF engine must
        agree on the I-V *shape*: same ambipolar ordering and magnitudes
        within an order of magnitude at matching bias points."""
        negf = NEGFDevice(GNRFETGeometry(n_index=12), n_x=31, n_y=9)
        fast = SBFETModel(GNRFETGeometry(n_index=12))
        for vg in (0.0, 0.25, 0.75):
            i_negf = negf.solve(vg, 0.5).current_a
            i_fast = fast.current_at(vg, 0.5)
            assert 0.1 < i_fast / i_negf < 10.0
