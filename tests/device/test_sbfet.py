"""Tests for the fast SBFET engine: shapes, symmetries, convergence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.sbfet import SBFETModel


@pytest.fixture(scope="module")
def model():
    return SBFETModel(GNRFETGeometry(n_index=12))


class TestElectrostatics:
    def test_zero_bias_midgap_at_zero(self, model):
        u, _ = model.solve_midgap_ev(0.0, 0.0)
        assert u == pytest.approx(0.0, abs=5e-3)

    def test_gate_pulls_midgap_down(self, model):
        u0, _ = model.solve_midgap_ev(0.0, 0.0)
        u1, _ = model.solve_midgap_ev(0.5, 0.0)
        assert u1 < u0

    def test_quantum_capacitance_limits_swing(self, model):
        """Once the band edge crosses the Fermi level, charging feedback
        makes |dU/dVG| < gate_coupling."""
        u1, _ = model.solve_midgap_ev(0.55, 0.0)
        u2, _ = model.solve_midgap_ev(0.65, 0.0)
        slope = abs(u2 - u1) / 0.1
        assert slope < model.geometry.gate_coupling

    def test_subthreshold_slope_near_laplace(self, model):
        """Deep in the gap there is no charge: U follows the Laplace
        coupling."""
        u1, _ = model.solve_midgap_ev(0.00, 0.0)
        u2, _ = model.solve_midgap_ev(0.05, 0.0)
        slope = abs(u2 - u1) / 0.05
        assert slope == pytest.approx(model.geometry.gate_coupling,
                                      rel=0.05)

    def test_band_profile_boundary_pinning(self, model):
        """Midgap pinned at 0 at the source and -V_D at the drain."""
        profile = model.band_profile_midgap_ev(-0.3, 0.5)
        assert profile[0] == pytest.approx(0.0, abs=0.01)
        assert profile[-1] == pytest.approx(-0.5, abs=0.01)
        assert profile[len(profile) // 2] == pytest.approx(-0.3, abs=0.01)


class TestTransmission:
    def test_bounded_by_mode_count(self, model):
        profile = model.band_profile_midgap_ev(-0.2, 0.4)
        e = np.linspace(-1.5, 1.5, 101)
        t = model.transmission(e, profile)
        assert np.all(t >= 0.0)
        assert np.all(t <= len(model.modes) + 1e-9)

    def test_gap_blocks_transport(self, model):
        """Energies in the channel gap see ~zero transmission through a
        15 nm channel."""
        profile = model.band_profile_midgap_ev(0.0, 0.0)
        t = model.transmission(np.array([0.0]), profile)[0]
        assert t < 1e-6

    def test_above_barrier_transparent(self, model):
        profile = model.band_profile_midgap_ev(-0.5, 0.0)
        edge = model.modes[0].edge_ev
        t = model.transmission(np.array([edge + 0.1]), profile)[0]
        assert t > 0.5


class TestIVShape:
    def test_ambipolar_minimum_near_vd_over_2(self, model):
        """Minimum leakage at V_G ~ V_D / 2 (paper Fig. 2a)."""
        vgs = np.linspace(0.0, 0.6, 25)
        currents = np.array([model.current_at(v, 0.5) for v in vgs])
        v_min = vgs[np.argmin(currents)]
        assert v_min == pytest.approx(0.25, abs=0.08)

    def test_leakage_grows_exponentially_with_vd(self, model):
        """"the drain voltage exponentially increases the minimum
        leakage current"."""
        def min_leak(vd):
            vgs = np.linspace(0.0, 0.75, 16)
            return min(model.current_at(v, vd) for v in vgs)

        i25, i50, i75 = min_leak(0.25), min_leak(0.5), min_leak(0.75)
        assert i50 / i25 > 5.0
        assert i75 / i50 > 5.0

    def test_electron_and_hole_branches(self, model):
        """Current rises on both sides of the ambipolar minimum."""
        i_min = model.current_at(0.25, 0.5)
        assert model.current_at(0.0, 0.5) > 2.0 * i_min
        assert model.current_at(0.6, 0.5) > 2.0 * i_min

    def test_zero_vd_zero_current(self, model):
        assert model.current_at(0.4, 0.0) == 0.0

    def test_current_positive_forward_bias(self, model):
        for vg in (0.0, 0.3, 0.7):
            assert model.current_at(vg, 0.5) > 0.0

    @given(st.floats(min_value=0.0, max_value=0.75))
    @settings(max_examples=10, deadline=None)
    def test_current_increases_with_vd_n_branch(self, vg):
        m = SBFETModel(GNRFETGeometry(n_index=12))
        assert m.current_at(vg, 0.6) >= m.current_at(vg, 0.3) * 0.99


class TestCharge:
    def test_charge_sign_follows_gate(self, model):
        u_on, _ = model.solve_midgap_ev(0.75, 0.05)
        u_off, _ = model.solve_midgap_ev(-0.5, 0.05)
        assert model.channel_charge_c(u_on, 0.05) > 0.0   # electrons
        assert model.channel_charge_c(u_off, 0.05) < 0.0  # holes

    def test_solution_dataclass_complete(self, model):
        sol = model.solve_bias(0.4, 0.3)
        assert sol.bias.vg == 0.4
        assert sol.iterations > 0
        assert np.isfinite(sol.current_a)
        assert np.isfinite(sol.charge_c)
        assert sol.electron_linear_density_per_nm >= 0.0
        assert sol.hole_linear_density_per_nm >= 0.0


class TestModeSelection:
    def test_auto_mode_count_grows_with_width(self):
        m9 = SBFETModel(GNRFETGeometry(n_index=9))
        m18 = SBFETModel(GNRFETGeometry(n_index=18))
        assert len(m18.modes) > len(m9.modes)

    def test_explicit_mode_count(self):
        m = SBFETModel(GNRFETGeometry(n_index=12), n_modes=4)
        assert len(m.modes) == 4


class TestImpurityProfile:
    def test_negative_charge_raises_profile(self):
        m = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-1.0)))
        assert m._impurity_profile_ev.max() > 0.1
        assert m._impurity_profile_ev.min() >= -1e-12

    def test_profile_peaks_at_impurity_position(self):
        m = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-1.0,
                                                position_nm=3.0)))
        x_peak = m._x_nm[np.argmax(m._impurity_profile_ev)]
        assert x_peak == pytest.approx(3.0, abs=0.2)

    def test_no_impurity_zero_profile(self, model):
        assert np.all(model._impurity_profile_ev == 0.0)

    def test_charge_scaling(self):
        m1 = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-1.0)))
        m2 = SBFETModel(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-2.0)))
        assert m2._impurity_profile_ev.max() == pytest.approx(
            2.0 * m1._impurity_profile_ev.max(), rel=1e-9)
