"""Tests for the experiment registry (fast modes of the cheap entries).

The full experiments are exercised by the benchmark harness; here we
check registry integrity plus the fast paths of the device-level
experiments (fig2/fig4 and parts of fig5/fig7 logic are covered through
their building blocks elsewhere).
"""

import pytest

from repro.reporting.experiments import EXPERIMENTS, run_experiment, run_fig2, run_fig4


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        paper = {"fig2", "fig3", "table1", "fig4", "fig5",
                 "table2", "table3", "table4", "fig6", "fig7"}
        extensions = {"ext-roughness", "ext-oxide", "ext-temperature",
                      "ext-yield"}
        assert set(EXPERIMENTS) == paper | extensions

    def test_descriptions_present(self):
        for key, (description, fn) in EXPERIMENTS.items():
            assert description
            assert callable(fn)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self, tech):
        return run_fig2(fast=True)

    def test_vt_anchor_pair(self, fig2):
        """Paper Fig 2(b): VT ~0.3 V at zero offset, ~0.1 V at 0.2 V."""
        _, data = fig2
        assert data["vt"][0.0] == pytest.approx(0.30, abs=0.05)
        assert data["vt"][0.2] == pytest.approx(0.10, abs=0.05)

    def test_four_drain_biases(self, fig2):
        _, data = fig2
        assert len(data["series"]) == 4

    def test_report_contains_plot_and_table(self, fig2):
        report, _ = fig2
        assert "Fig 2(a)" in report
        assert "Fig 2(b)" in report


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self, tech):
        return run_fig4(fast=True)

    def test_on_off_ordering(self, fig4):
        _, data = fig4
        r = data["on_off_ratios"]
        assert r[9] > r[12] > r[15] > r[18]

    def test_n9_high_ratio(self, fig4):
        """Paper: N=9 Ion/Ioff "as high as 1000X" - require > 100x."""
        _, data = fig4
        assert data["on_off_ratios"][9] > 100.0

    def test_four_series(self, fig4):
        _, data = fig4
        assert [s.name for s in data["series"]] == [
            "N=9", "N=12", "N=15", "N=18"]
