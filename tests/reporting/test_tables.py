"""Tests for ASCII table formatting."""

import math

import pytest

from repro.reporting.tables import format_pct_pair, format_table


class TestPctPair:
    def test_paper_cell_format(self):
        assert format_pct_pair((6.0, 77.0)) == "+6,+77"
        assert format_pct_pair((-13.0, -47.0)) == "-13,-47"

    def test_nan_rendered_as_dash(self):
        assert format_pct_pair((float("nan"), 5.0)) == "-,+5"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"],
                           [["alpha", "1.5"], ["b", "20"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_column_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_numeric_right_aligned(self):
        out = format_table(["x"], [["5"], ["500"]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("500")

    def test_wide_cells_expand_column(self):
        out = format_table(["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in out
