"""Tests for figure data series."""

import numpy as np
import pytest

from repro.reporting.figures import FigureSeries, save_series_csv


class TestFigureSeries:
    def test_arrays_coerced(self):
        s = FigureSeries("a", [1, 2], [3, 4])
        assert s.x.dtype == float

    def test_shape_check(self):
        with pytest.raises(ValueError):
            FigureSeries("a", np.zeros(3), np.zeros(4))

    def test_meta_free_form(self):
        s = FigureSeries("a", [0], [0], meta={"figure": "4"})
        assert s.meta["figure"] == "4"


class TestCSV:
    def test_roundtrip_content(self, tmp_path):
        series = [FigureSeries("s1", [0.0, 1.0], [2.0, 3.0]),
                  FigureSeries("s2", [0.5], [9.0])]
        path = tmp_path / "fig.csv"
        save_series_csv(series, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) == 4
        assert lines[1].startswith("s1,0.0,")
