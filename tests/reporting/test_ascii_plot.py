"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.reporting.ascii_plot import ascii_histogram, ascii_line_plot


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        x = np.linspace(0, 1, 20)
        out = ascii_line_plot(x, {"a": x, "b": 1 - x}, title="demo")
        assert "demo" in out
        assert "*=a" in out
        assert "+=b" in out

    def test_log_scale(self):
        x = np.linspace(0, 1, 10)
        out = ascii_line_plot(x, {"s": 10.0 ** (6 * x)}, logy=True)
        assert "log10(y)" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_plot(np.zeros(5), {"s": np.zeros(4)})

    def test_handles_nan_series(self):
        x = np.linspace(0, 1, 10)
        y = x.copy()
        y[3] = np.nan
        out = ascii_line_plot(x, {"s": y})
        assert "y in" in out

    def test_all_nan_graceful(self):
        x = np.linspace(0, 1, 5)
        out = ascii_line_plot(x, {"s": np.full(5, np.nan)})
        assert "no finite data" in out


class TestHistogram:
    def test_counts_total(self):
        values = np.random.default_rng(0).normal(size=500)
        out = ascii_histogram(values, bins=10)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 500

    def test_title(self):
        out = ascii_histogram(np.zeros(3), title="hist")
        assert out.splitlines()[0] == "hist"
