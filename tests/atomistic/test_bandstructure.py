"""Tests for A-GNR band structure: gaps, families, masses, DOS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atomistic.bandstructure import (
    band_edges_ev,
    band_gap_ev,
    band_velocity_m_per_s,
    compute_bands,
    density_of_states,
    effective_masses,
    subband_edges,
)
from repro.constants import Q_E


class TestBands:
    def test_band_count(self):
        bands = compute_bands(9, n_k=31)
        assert bands.energies_ev.shape == (31, 18)

    def test_particle_hole_symmetry(self):
        """Nearest-neighbour hopping on a bipartite lattice gives a
        spectrum symmetric about zero at every k."""
        bands = compute_bands(12, n_k=21)
        e = bands.energies_ev
        assert np.allclose(e, -e[:, ::-1], atol=1e-9)

    def test_bandwidth_is_3t(self):
        # The honeycomb p_z band spans ~[-3t, 3t].
        bands = compute_bands(15, n_k=41)
        assert bands.energies_ev.max() == pytest.approx(3 * 2.7, rel=0.1)

    def test_sorted_per_k(self):
        bands = compute_bands(10, n_k=11)
        assert np.all(np.diff(bands.energies_ev, axis=1) >= -1e-12)


class TestBandGap:
    @pytest.mark.parametrize("n,expected", [
        (9, 0.79), (12, 0.61), (15, 0.49), (18, 0.42),
    ])
    def test_semiconducting_family_gaps(self, n, expected):
        """Gap values of the paper's device indices (edge-relaxed TB with
        t = 2.7 eV; consistent with Son-Cohen-Louie scale)."""
        assert band_gap_ev(n) == pytest.approx(expected, abs=0.03)

    @pytest.mark.parametrize("n", [11, 14, 17])
    def test_3q2_family_small_but_finite_gap(self, n):
        """Edge relaxation opens a small gap in the 3q+2 family (all
        sub-10nm GNRs are semiconducting, paper ref [9])."""
        gap = band_gap_ev(n)
        assert 0.0 < gap < 0.25

    def test_gap_closes_without_edge_relaxation_3q2(self):
        assert band_gap_ev(14, edge_relaxation=0.0) == pytest.approx(
            0.0, abs=0.02)

    def test_gap_decreases_with_width_within_family(self):
        gaps = [band_gap_ev(n) for n in (9, 12, 15, 18, 21)]
        assert all(a > b for a, b in zip(gaps, gaps[1:]))

    def test_inverse_width_scaling(self):
        """E_g ~ 1/W within a family (paper: "the band-gap of the
        semiconducting GNR is, in general, inversely proportional to the
        GNR width")."""
        from repro.constants import gnr_width_nm

        product_9 = band_gap_ev(9) * gnr_width_nm(9)
        product_18 = band_gap_ev(18) * gnr_width_nm(18)
        assert product_18 == pytest.approx(product_9, rel=0.25)

    def test_edges_symmetric(self):
        e_v, e_c = band_edges_ev(12)
        assert e_c == pytest.approx(-e_v, abs=1e-9)


class TestSubbands:
    def test_first_edge_is_half_gap(self):
        edges = subband_edges(12, n_subbands=3)
        assert edges[0] == pytest.approx(band_gap_ev(12) / 2.0, abs=1e-9)

    def test_edges_ascending(self):
        edges = subband_edges(9, n_subbands=5)
        assert np.all(np.diff(edges) > 0.0)

    def test_narrower_ribbon_larger_subband_spacing(self):
        e9 = subband_edges(9, n_subbands=2)
        e18 = subband_edges(18, n_subbands=2)
        assert (e9[1] - e9[0]) > (e18[1] - e18[0])


class TestEffectiveMass:
    def test_positive_and_light(self):
        masses = effective_masses(12, n_subbands=2)
        m_e = 9.109e-31
        assert np.all(masses > 0.0)
        # GNR masses are a few hundredths of m_e.
        assert 0.01 * m_e < masses[0] < 0.3 * m_e

    def test_narrower_ribbon_heavier_mass(self):
        m9 = effective_masses(9, n_subbands=1)[0]
        m18 = effective_masses(18, n_subbands=1)[0]
        assert m9 > m18

    def test_two_band_velocity_consistency(self):
        half_gap = band_gap_ev(12) / 2.0
        mass = effective_masses(12, n_subbands=1)[0]
        v = band_velocity_m_per_s(half_gap, mass)
        # m* = E_n / v^2 must invert exactly.
        assert half_gap * Q_E / v ** 2 == pytest.approx(mass, rel=1e-12)

    def test_velocity_validates_inputs(self):
        with pytest.raises(ValueError):
            band_velocity_m_per_s(-0.1, 1e-31)
        with pytest.raises(ValueError):
            band_velocity_m_per_s(0.1, 0.0)


class TestDOS:
    def test_zero_in_gap(self):
        bands = compute_bands(9, n_k=201)
        gap = band_gap_ev(9)
        energies = np.array([0.0, gap / 4.0, -gap / 4.0])
        dos = density_of_states(bands, energies, broadening_ev=2e-3)
        assert np.all(dos < 1e-2)

    def test_van_hove_peak_at_band_edge(self):
        bands = compute_bands(9, n_k=401)
        edge = band_gap_ev(9) / 2.0
        at_edge = density_of_states(bands, np.array([edge]))[0]
        above = density_of_states(bands, np.array([edge + 0.15]))[0]
        assert at_edge > 3.0 * above

    def test_nonnegative(self):
        bands = compute_bands(12, n_k=101)
        energies = np.linspace(-1.0, 1.0, 50)
        assert np.all(density_of_states(bands, energies) >= 0.0)

    def test_rejects_bad_broadening(self):
        bands = compute_bands(9, n_k=21)
        with pytest.raises(ValueError):
            density_of_states(bands, np.array([0.0]), broadening_ev=0.0)


class TestPropertyBased:
    @given(st.integers(min_value=5, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_gap_nonnegative_and_bounded(self, n):
        gap = band_gap_ev(n, n_k=101)
        assert 0.0 <= gap < 3.0

    @given(st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=8, deadline=None)
    def test_gap_scales_linearly_with_hopping(self, t):
        """The TB spectrum is linear in the single energy scale t."""
        base = band_gap_ev(9, n_k=101, hopping_ev=2.7)
        scaled = band_gap_ev(9, n_k=101, hopping_ev=t)
        assert scaled == pytest.approx(base * t / 2.7, rel=1e-6)
