"""Tests for tight-binding Hamiltonian construction."""

import numpy as np
import pytest

from repro.atomistic.hamiltonian import (
    block_tridiagonal_blocks,
    bloch_hamiltonian,
    build_real_space_hamiltonian,
    build_unit_cell_hamiltonian,
)
from repro.atomistic.lattice import ArmchairGNR
from repro.constants import T_HOPPING_EV


@pytest.fixture(scope="module")
def ribbon():
    return ArmchairGNR(9)


class TestUnitCell:
    def test_h00_symmetric(self, ribbon):
        h00, _ = build_unit_cell_hamiltonian(ribbon)
        assert np.allclose(h00, h00.T)

    def test_hopping_sign_and_magnitude(self, ribbon):
        h00, h01 = build_unit_cell_hamiltonian(ribbon)
        nonzero = h00[h00 != 0.0]
        assert np.all(nonzero < 0.0)
        # Bulk bonds are -t; edge dimers are -(1.12) t.
        values = set(np.round(np.unique(nonzero), 6))
        assert -T_HOPPING_EV in {round(v, 6) for v in values}
        assert round(-T_HOPPING_EV * 1.12, 6) in {round(v, 6) for v in values}
        assert np.all(h01[h01 != 0.0] == -T_HOPPING_EV)

    def test_no_onsite_terms(self, ribbon):
        h00, _ = build_unit_cell_hamiltonian(ribbon)
        assert np.all(np.diag(h00) == 0.0)

    def test_edge_relaxation_toggle(self, ribbon):
        h_rel, _ = build_unit_cell_hamiltonian(ribbon, edge_relaxation=0.12)
        h_flat, _ = build_unit_cell_hamiltonian(ribbon, edge_relaxation=0.0)
        diff = h_rel - h_flat
        # Only the two edge dimer bonds (4 matrix entries) differ.
        assert np.count_nonzero(diff) == 4


class TestBloch:
    def test_hermitian_at_generic_k(self, ribbon):
        h00, h01 = build_unit_cell_hamiltonian(ribbon)
        hk = bloch_hamiltonian(h00, h01, 1.234, ribbon.period_nm)
        assert np.allclose(hk, hk.conj().T)

    def test_gamma_point_is_real(self, ribbon):
        h00, h01 = build_unit_cell_hamiltonian(ribbon)
        hk = bloch_hamiltonian(h00, h01, 0.0, ribbon.period_nm)
        assert np.allclose(hk.imag, 0.0)

    def test_periodicity_in_k(self, ribbon):
        h00, h01 = build_unit_cell_hamiltonian(ribbon)
        g = 2.0 * np.pi / ribbon.period_nm
        h1 = bloch_hamiltonian(h00, h01, 0.3, ribbon.period_nm)
        h2 = bloch_hamiltonian(h00, h01, 0.3 + g, ribbon.period_nm)
        assert np.allclose(h1, h2, atol=1e-12)


class TestRealSpace:
    def test_symmetric(self):
        r = ArmchairGNR(6, n_cells=3)
        h = build_real_space_hamiltonian(r)
        assert np.allclose(h, h.T)

    def test_scalar_onsite(self):
        r = ArmchairGNR(6, n_cells=2)
        h = build_real_space_hamiltonian(r, onsite_ev=0.5)
        assert np.allclose(np.diag(h), 0.5)

    def test_array_onsite(self):
        r = ArmchairGNR(6, n_cells=2)
        onsite = np.linspace(0.0, 1.0, r.n_atoms)
        h = build_real_space_hamiltonian(r, onsite_ev=onsite)
        assert np.allclose(np.diag(h), onsite)

    def test_wrong_onsite_shape_raises(self):
        r = ArmchairGNR(6, n_cells=2)
        with pytest.raises(ValueError):
            build_real_space_hamiltonian(r, onsite_ev=np.zeros(5))

    def test_blocks_reassemble_full_matrix(self):
        r = ArmchairGNR(6, n_cells=3)
        onsite = np.linspace(-0.2, 0.4, r.n_atoms)
        full = build_real_space_hamiltonian(r, onsite_ev=onsite)
        diag, coup = block_tridiagonal_blocks(r, onsite_ev=onsite)
        per = r.atoms_per_cell
        rebuilt = np.zeros_like(full)
        for i, d in enumerate(diag):
            rebuilt[i * per:(i + 1) * per, i * per:(i + 1) * per] = d
        for i, t in enumerate(coup):
            rebuilt[i * per:(i + 1) * per,
                    (i + 1) * per:(i + 2) * per] = t
            rebuilt[(i + 1) * per:(i + 2) * per,
                    i * per:(i + 1) * per] = t.T
        assert np.allclose(rebuilt, full)
