"""Tests for the transverse-mode (subband) reduction."""

import numpy as np
import pytest

from repro.atomistic.bandstructure import band_gap_ev, subband_edges
from repro.atomistic.modespace import transverse_modes
from repro.constants import HBAR_SI, Q_E


class TestTransverseModes:
    def test_count_and_ordering(self):
        modes = transverse_modes(12, 4)
        assert len(modes) == 4
        edges = [m.edge_ev for m in modes]
        assert edges == sorted(edges)
        assert [m.index for m in modes] == [0, 1, 2, 3]

    def test_lowest_mode_is_half_gap(self):
        modes = transverse_modes(9, 2)
        assert modes[0].edge_ev == pytest.approx(band_gap_ev(9) / 2, abs=1e-9)

    def test_matches_subband_edges(self):
        modes = transverse_modes(15, 3)
        edges = subband_edges(15, 3)
        for m, e in zip(modes, edges):
            assert m.edge_ev == pytest.approx(float(e), abs=1e-12)

    def test_caching_returns_same_object(self):
        a = transverse_modes(12, 3)
        b = transverse_modes(12, 3)
        assert a is b

    def test_rejects_zero_modes(self):
        with pytest.raises(ValueError):
            transverse_modes(12, 0)


class TestDispersionRelations:
    def test_kappa_zero_outside_gap(self):
        mode = transverse_modes(12, 1)[0]
        assert mode.kappa_per_nm(mode.edge_ev * 1.5) == 0.0
        assert mode.kappa_per_nm(-mode.edge_ev * 1.5) == 0.0

    def test_kappa_max_at_midgap(self):
        mode = transverse_modes(12, 1)[0]
        energies = np.linspace(-mode.edge_ev, mode.edge_ev, 41)
        kappa = mode.kappa_per_nm(energies)
        assert np.argmax(kappa) == 20  # midgap

    def test_kappa_midgap_value(self):
        """kappa(0) = E_n / (hbar v)."""
        mode = transverse_modes(12, 1)[0]
        hv_ev_nm = HBAR_SI * mode.velocity_m_per_s / Q_E * 1e9
        assert mode.kappa_per_nm(0.0) == pytest.approx(
            mode.edge_ev / hv_ev_nm, rel=1e-12)

    def test_wavevector_zero_inside_gap(self):
        mode = transverse_modes(12, 1)[0]
        assert mode.wavevector_per_nm(0.0) == 0.0

    def test_kappa_wavevector_complement(self):
        """kappa and k are complementary branches of the same two-band
        dispersion: kappa(E)^2 - ... continuity at the band edge."""
        mode = transverse_modes(9, 1)[0]
        eps = 1e-6
        assert mode.kappa_per_nm(mode.edge_ev - eps) == pytest.approx(
            0.0, abs=1e-2)
        assert mode.wavevector_per_nm(mode.edge_ev + eps) == pytest.approx(
            0.0, abs=1e-2)

    def test_dispersion_consistency_with_bands(self):
        """E(k) from the two-band model should track the TB band within a
        few percent up to ~0.3 eV above the edge."""
        from repro.atomistic.bandstructure import compute_bands

        mode = transverse_modes(12, 1)[0]
        bands = compute_bands(12, n_k=401)
        cond = bands.conduction_bands()[:, 0]
        ks = bands.k_per_nm
        hv_ev_nm = HBAR_SI * mode.velocity_m_per_s / Q_E * 1e9
        model = np.sqrt(mode.edge_ev ** 2 + (hv_ev_nm * ks) ** 2)
        window = cond < mode.edge_ev + 0.3
        err = np.abs(model[window] - cond[window])
        assert err.max() < 0.05
