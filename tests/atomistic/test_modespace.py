"""Tests for the transverse-mode (subband) reduction."""

import numpy as np
import pytest

from repro.atomistic.bandstructure import band_gap_ev, subband_edges
from repro.atomistic.hamiltonian import (
    build_unit_cell_hamiltonian,
    cached_unit_cell_hamiltonian,
)
from repro.atomistic.lattice import ArmchairGNR
from repro.atomistic.modespace import transverse_mode_basis, transverse_modes
from repro.constants import HBAR_SI, Q_E


class TestTransverseModes:
    def test_count_and_ordering(self):
        modes = transverse_modes(12, 4)
        assert len(modes) == 4
        edges = [m.edge_ev for m in modes]
        assert edges == sorted(edges)
        assert [m.index for m in modes] == [0, 1, 2, 3]

    def test_lowest_mode_is_half_gap(self):
        modes = transverse_modes(9, 2)
        assert modes[0].edge_ev == pytest.approx(band_gap_ev(9) / 2, abs=1e-9)

    def test_matches_subband_edges(self):
        modes = transverse_modes(15, 3)
        edges = subband_edges(15, 3)
        for m, e in zip(modes, edges):
            assert m.edge_ev == pytest.approx(float(e), abs=1e-12)

    def test_caching_returns_same_object(self):
        a = transverse_modes(12, 3)
        b = transverse_modes(12, 3)
        assert a is b

    def test_rejects_zero_modes(self):
        with pytest.raises(ValueError):
            transverse_modes(12, 0)


class TestDispersionRelations:
    def test_kappa_zero_outside_gap(self):
        mode = transverse_modes(12, 1)[0]
        assert mode.kappa_per_nm(mode.edge_ev * 1.5) == 0.0
        assert mode.kappa_per_nm(-mode.edge_ev * 1.5) == 0.0

    def test_kappa_max_at_midgap(self):
        mode = transverse_modes(12, 1)[0]
        energies = np.linspace(-mode.edge_ev, mode.edge_ev, 41)
        kappa = mode.kappa_per_nm(energies)
        assert np.argmax(kappa) == 20  # midgap

    def test_kappa_midgap_value(self):
        """kappa(0) = E_n / (hbar v)."""
        mode = transverse_modes(12, 1)[0]
        hv_ev_nm = HBAR_SI * mode.velocity_m_per_s / Q_E * 1e9
        assert mode.kappa_per_nm(0.0) == pytest.approx(
            mode.edge_ev / hv_ev_nm, rel=1e-12)

    def test_wavevector_zero_inside_gap(self):
        mode = transverse_modes(12, 1)[0]
        assert mode.wavevector_per_nm(0.0) == 0.0

    def test_kappa_wavevector_complement(self):
        """kappa and k are complementary branches of the same two-band
        dispersion: kappa(E)^2 - ... continuity at the band edge."""
        mode = transverse_modes(9, 1)[0]
        eps = 1e-6
        assert mode.kappa_per_nm(mode.edge_ev - eps) == pytest.approx(
            0.0, abs=1e-2)
        assert mode.wavevector_per_nm(mode.edge_ev + eps) == pytest.approx(
            0.0, abs=1e-2)

    def test_dispersion_consistency_with_bands(self):
        """E(k) from the two-band model should track the TB band within a
        few percent up to ~0.3 eV above the edge."""
        from repro.atomistic.bandstructure import compute_bands

        mode = transverse_modes(12, 1)[0]
        bands = compute_bands(12, n_k=401)
        cond = bands.conduction_bands()[:, 0]
        ks = bands.k_per_nm
        hv_ev_nm = HBAR_SI * mode.velocity_m_per_s / Q_E * 1e9
        model = np.sqrt(mode.edge_ev ** 2 + (hv_ev_nm * ks) ** 2)
        window = cond < mode.edge_ev + 0.3
        err = np.abs(model[window] - cond[window])
        assert err.max() < 0.05


def _off_block_residual(basis, h):
    """Largest matrix element of U^T H U outside the block diagonal."""
    reduced = basis.vectors.T @ h @ basis.vectors
    mask = np.zeros_like(reduced, dtype=bool)
    start = 0
    for size in basis.block_sizes:
        mask[start:start + size, start:start + size] = True
        start += size
    return float(np.max(np.abs(reduced[~mask])))


class TestTransverseModeBasis:
    """Invariant-subspace basis behind the coupled mode-space engine."""

    @pytest.mark.parametrize("n_index", [7, 12, 13, 18])
    def test_orthonormal(self, n_index):
        basis = transverse_mode_basis(n_index)
        u = basis.vectors
        assert u.shape == (2 * n_index, 2 * n_index)
        assert np.max(np.abs(u.T @ u - np.eye(2 * n_index))) < 1e-12

    @pytest.mark.parametrize("n_index", [7, 12, 13, 18])
    def test_block_diagonalizes_uniform_lead(self, n_index):
        """Both uniform-hopping blocks must be block-diagonal in the basis
        (so the reduction is exact at every wave vector)."""
        basis = transverse_mode_basis(n_index)
        h00, h01 = build_unit_cell_hamiltonian(
            ArmchairGNR(n_index), edge_relaxation=0.0)
        assert _off_block_residual(basis, h00) < 1e-10
        assert _off_block_residual(basis, h01) < 1e-10

    @pytest.mark.parametrize("n_index", [7, 12, 13, 18])
    def test_block_edges_match_subband_edges(self, n_index):
        """Every block's conduction edge is a subband edge of the
        uniform-hopping ribbon."""
        basis = transverse_mode_basis(n_index)
        edges_ref = np.asarray(
            subband_edges(n_index, n_subbands=n_index, edge_relaxation=0.0),
            dtype=float)
        for edge in basis.block_edges_ev:
            assert np.min(np.abs(edges_ref - edge)) < 1e-10

    def test_blocks_sorted_by_edge(self):
        basis = transverse_mode_basis(12)
        edges = list(basis.block_edges_ev)
        assert edges == sorted(edges)
        assert basis.block_edges_ev[0] == pytest.approx(
            band_gap_ev(12, edge_relaxation=0.0) / 2, abs=1e-10)

    def test_odd_n_has_flat_band_blocks(self):
        """Odd-N ribbons carry two size-1 flat-band blocks at +-t that
        contribute zero subband pairs."""
        basis = transverse_mode_basis(7)
        assert basis.block_sizes == (4, 4, 4, 1, 1)
        assert basis.subbands_per_block == (2, 2, 2, 0, 0)
        assert sum(basis.block_sizes) == basis.n_orbitals == 14

    def test_blocks_for_modes(self):
        basis = transverse_mode_basis(12)
        assert basis.subbands_per_block == (2, 2, 2, 2, 2, 2)
        assert basis.blocks_for_modes(1) == 1
        assert basis.blocks_for_modes(2) == 1
        assert basis.blocks_for_modes(3) == 2
        assert basis.blocks_for_modes(4) == 2
        # More modes than exist: every block.
        assert basis.blocks_for_modes(99) == basis.n_blocks
        with pytest.raises(ValueError):
            basis.blocks_for_modes(0)

    def test_projector_shapes(self):
        basis = transverse_mode_basis(12)
        assert basis.projector(None).shape == (24, 24)
        assert basis.projector(2).shape == (24, 4)
        assert basis.projector(3).shape == (24, 8)
        u = basis.projector(2)
        assert np.max(np.abs(u.T @ u - np.eye(4))) < 1e-12

    def test_cached_identity(self):
        assert transverse_mode_basis(12) is transverse_mode_basis(12)
        assert not transverse_mode_basis(12).vectors.flags.writeable


class TestCachedUnitCellHamiltonian:
    def test_matches_direct_build(self):
        h00c, h01c = cached_unit_cell_hamiltonian(9)
        h00, h01 = build_unit_cell_hamiltonian(ArmchairGNR(9))
        np.testing.assert_array_equal(h00c, h00)
        np.testing.assert_array_equal(h01c, h01)

    def test_cached_and_read_only(self):
        a = cached_unit_cell_hamiltonian(9)
        b = cached_unit_cell_hamiltonian(9)
        assert a[0] is b[0]
        assert not a[0].flags.writeable
        with pytest.raises(ValueError):
            a[0][0, 0] = 1.0
