"""Tests for A-GNR geometry and bond construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atomistic.lattice import (
    ArmchairGNR,
    GNRArraySpec,
    gnr_family,
    is_semiconducting_index,
)
from repro.constants import A_CC_NM
from repro.errors import InvalidDeviceError


class TestFamily:
    @pytest.mark.parametrize("n,family", [(9, 0), (12, 0), (10, 1),
                                          (13, 1), (11, 2), (14, 2)])
    def test_families(self, n, family):
        assert gnr_family(n) == family

    @pytest.mark.parametrize("n,semi", [(9, True), (12, True), (10, True),
                                        (11, False), (14, False)])
    def test_paper_semiconducting_selection(self, n, semi):
        # "A-GNRs with an index of N=3q and N=(3q+1) are semiconducting
        # ... N=(3q+2) are semiconducting with a small band-gap and are
        # not considered in this paper."
        assert is_semiconducting_index(n) is semi

    def test_rejects_bad_index(self):
        with pytest.raises(InvalidDeviceError):
            gnr_family(1)


class TestGeometry:
    def test_atom_count(self):
        r = ArmchairGNR(9, n_cells=3)
        assert r.atoms_per_cell == 18
        assert r.n_atoms == 54

    def test_positions_shape_and_extent(self):
        r = ArmchairGNR(12, n_cells=2)
        pos = r.positions()
        assert pos.shape == (r.n_atoms, 2)
        assert pos[:, 1].max() == pytest.approx(r.width_nm)
        assert pos[:, 0].min() >= 0.0

    def test_length(self):
        r = ArmchairGNR(9, n_cells=5)
        assert r.length_nm == pytest.approx(5 * 0.426, abs=1e-3)

    def test_atom_index_bounds(self):
        r = ArmchairGNR(9, n_cells=2)
        with pytest.raises(IndexError):
            r.atom_index(2, 0, 0)
        with pytest.raises(IndexError):
            r.atom_index(0, 9, 0)
        with pytest.raises(IndexError):
            r.atom_index(0, 0, 2)

    def test_invalid_construction(self):
        with pytest.raises(InvalidDeviceError):
            ArmchairGNR(1)
        with pytest.raises(InvalidDeviceError):
            ArmchairGNR(9, n_cells=0)


class TestBonds:
    @pytest.mark.parametrize("n", [5, 9, 12, 13])
    def test_rule_based_bonds_match_geometry(self, n):
        """The rule-based bond constructors must exactly reproduce the
        geometric nearest-neighbour search on a 3-cell segment."""
        r = ArmchairGNR(n, n_cells=3)
        geometric = r.neighbor_pairs_by_distance()

        per_cell = r.atoms_per_cell
        rule_based = set()
        for cell in range(3):
            base = cell * per_cell
            for i, j, _ in r.intra_cell_bonds():
                rule_based.add((base + i, base + j))
            if cell < 2:
                for i, j in r.inter_cell_bonds():
                    a, b = base + i, base + per_cell + j
                    rule_based.add((min(a, b), max(a, b)))
        assert rule_based == geometric

    @pytest.mark.parametrize("n", [6, 9, 12])
    def test_all_bond_lengths_are_acc(self, n):
        r = ArmchairGNR(n, n_cells=2)
        pos = r.positions()
        for i, j in r.neighbor_pairs_by_distance():
            d = np.linalg.norm(pos[i] - pos[j])
            assert d == pytest.approx(A_CC_NM, abs=1e-9)

    def test_edge_dimer_flags(self):
        r = ArmchairGNR(9)
        edge_bonds = [(i, j) for i, j, e in r.intra_cell_bonds() if e]
        # Exactly two edge dimers per cell: rows 0 and N-1.
        assert len(edge_bonds) == 2
        assert (0, 1) in edge_bonds

    @given(st.integers(min_value=3, max_value=24))
    @settings(max_examples=15, deadline=None)
    def test_coordination_number_bounds(self, n):
        """Interior atoms have 3 neighbours, edge atoms 2 (honeycomb)."""
        r = ArmchairGNR(n, n_cells=4)
        counts = np.zeros(r.n_atoms, dtype=int)
        for i, j in r.neighbor_pairs_by_distance():
            counts[i] += 1
            counts[j] += 1
        # Segment-end atoms can have as few as 1 neighbour.
        interior = counts[r.atoms_per_cell:-r.atoms_per_cell]
        assert interior.min() >= 2
        assert counts.max() == 3


class TestArraySpec:
    def test_paper_defaults(self):
        spec = GNRArraySpec()
        assert spec.n_ribbons == 4
        assert spec.pitch_nm == 10.0
        assert spec.contact_width_nm == 40.0

    def test_validation(self):
        with pytest.raises(InvalidDeviceError):
            GNRArraySpec(n_ribbons=0)
        with pytest.raises(InvalidDeviceError):
            GNRArraySpec(pitch_nm=0.0)
