"""Tests of the RPA7xx worker/parallel safety family."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import run_analysis


_RUNTIME_STUBS = {
    "src/repro/runtime/parallel.py": """\
        def parallel_map(fn, items, workers=None):
            return [fn(item) for item in items]
    """,
    "src/repro/runtime/__init__.py": """\
        from repro.runtime.parallel import parallel_map
    """,
    "src/repro/obs/__init__.py": """\
        ACTIVE = False

        def enable():
            return None

        def disable():
            return None
    """,
}


def _run(tmp_path, files: dict[str, str]):
    paths = []
    for rel, source in {**_RUNTIME_STUBS, **files}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_analysis(paths, select=["RPA7"])


class TestRPA701:
    def test_lambda_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            def run(items):
                return parallel_map(lambda x: x + 1, items)
        """})
        assert [f.code for f in report.findings] == ["RPA701"]
        assert "lambda" in report.findings[0].message

    def test_locally_bound_lambda_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            def run(items):
                fn = lambda x: x + 1
                return parallel_map(fn, items)
        """})
        assert [f.code for f in report.findings] == ["RPA701"]

    def test_nested_function_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            def run(items):
                def fn(x):
                    return x + 1
                return parallel_map(fn, items)
        """})
        assert [f.code for f in report.findings] == ["RPA701"]
        assert "nested function" in report.findings[0].message

    def test_partial_of_nested_function_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from functools import partial

            from repro.runtime import parallel_map

            def run(items, bias):
                def fn(b, x):
                    return x + b
                return parallel_map(partial(fn, bias), items)
        """})
        assert [f.code for f in report.findings] == ["RPA701"]

    def test_module_level_worker_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from functools import partial

            from repro.runtime import parallel_map

            def work(bias, x):
                return x + bias

            def run(items, bias):
                return parallel_map(partial(work, bias), items)
        """})
        assert report.clean


class TestRPA702:
    def test_global_statement_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            _COUNT = 0

            def work(x):
                global _COUNT
                _COUNT = _COUNT + 1
                return x

            def run(items):
                return parallel_map(work, items)
        """})
        assert "RPA702" in [f.code for f in report.findings]

    def test_subscript_store_into_module_dict_fires(self, tmp_path):
        # Seeded regression: a memoizing worker writing a module-level
        # dict silently loses the write in spawned processes.
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            _CACHE = {}

            def work(x):
                _CACHE[x] = x * 2
                return _CACHE[x]

            def run(items):
                return parallel_map(work, items)
        """})
        codes = [f.code for f in report.findings]
        assert codes == ["RPA702"]
        assert "_CACHE" in report.findings[0].message

    def test_mutating_method_on_module_list_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            _SEEN = []

            def work(x):
                _SEEN.append(x)
                return x

            def run(items):
                return parallel_map(work, items)
        """})
        assert [f.code for f in report.findings] == ["RPA702"]

    def test_local_shadowing_is_clean(self, tmp_path):
        # A local binding of the same name is not module state.
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro.runtime import parallel_map

            _CACHE = {}

            def work(x):
                _CACHE = {}
                _CACHE[x] = x * 2
                return _CACHE[x]

            def run(items):
                return parallel_map(work, items)
        """})
        assert report.clean

    def test_non_worker_function_not_checked(self, tmp_path):
        # The same mutation outside a parallel_map worker is the
        # per-process memoization idiom and stays legal.
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            _CACHE = {}

            def memoized(x):
                _CACHE[x] = x * 2
                return _CACHE[x]
        """})
        assert report.clean


class TestRPA703:
    def test_worker_toggling_obs_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro import obs
            from repro.runtime import parallel_map

            def work(x):
                obs.disable()
                return x

            def run(items):
                return parallel_map(work, items)
        """})
        assert [f.code for f in report.findings] == ["RPA703"]
        assert "obs.disable" in report.findings[0].message

    def test_parent_toggle_outside_worker_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/runner.py": """\
            from repro import obs
            from repro.runtime import parallel_map

            def work(x):
                return x

            def run(items):
                obs.enable()
                return parallel_map(work, items)
        """})
        assert report.clean
