"""One seeded violation per rule family, plus negative controls."""

from __future__ import annotations

import textwrap

from repro.analysis.checkers.contracts import ContractsChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.layering import (
    LAYER_DAG,
    LayeringChecker,
    allowed_imports,
)
from repro.analysis.checkers.resilience import ResilienceChecker
from repro.analysis.checkers.units import UnitsChecker, match_constant
from repro.analysis.engine import Project, load_module


def _module(tmp_path, source, rel="src/repro/device/example.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    module, err = load_module(path)
    assert err is None, err
    return module


def _check(checker, *modules):
    findings = []
    for m in modules:
        findings.extend(checker.check_module(m))
    findings.extend(checker.check_project(Project(modules=list(modules))))
    return findings


class TestDeterminism:
    def test_rpa101_unseeded_default_rng(self, tmp_path):
        m = _module(tmp_path, """\
            import numpy as np

            def sample():
                return np.random.default_rng().normal()
        """)
        codes = [f.code for f in _check(DeterminismChecker(), m)]
        assert "RPA101" in codes

    def test_seeded_default_rng_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            import numpy as np

            def sample(rng: np.random.Generator):
                return np.random.default_rng(42)
        """)
        assert _check(DeterminismChecker(), m) == []

    def test_rpa102_legacy_global_state(self, tmp_path):
        m = _module(tmp_path, """\
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
        """)
        codes = [f.code for f in _check(DeterminismChecker(), m)]
        assert codes.count("RPA102") == 2

    def test_rpa102_from_import_alias(self, tmp_path):
        m = _module(tmp_path, """\
            from numpy.random import normal as draw
            x = draw(size=3)
        """)
        codes = [f.code for f in _check(DeterminismChecker(), m)]
        assert "RPA102" in codes

    def test_rpa103_wall_clock(self, tmp_path):
        m = _module(tmp_path, """\
            import time

            def stamp():
                return time.time()
        """)
        findings = _check(DeterminismChecker(), m)
        assert [f.code for f in findings] == ["RPA103"]
        assert "perf_counter" in findings[0].message

    def test_perf_counter_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            import time

            def duration():
                return time.perf_counter()
        """)
        assert _check(DeterminismChecker(), m) == []

    def test_rpa104_sampler_without_rng_param(self, tmp_path):
        m = _module(tmp_path, """\
            import numpy as np

            def sample_widths(n: int, seed: int = 7) -> np.ndarray:
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)
        """)
        codes = [f.code for f in _check(DeterminismChecker(), m)]
        assert "RPA104" in codes

    def test_rpa104_satisfied_by_rng_parameter(self, tmp_path):
        m = _module(tmp_path, """\
            import numpy as np

            def sample_widths(n, rng=None):
                if rng is None:
                    rng = np.random.default_rng(7)
                return rng.normal(size=n)
        """)
        assert not [f for f in _check(DeterminismChecker(), m)
                    if f.code == "RPA104"]


class TestUnits:
    def test_rpa201_hopping_literal(self, tmp_path):
        m = _module(tmp_path, """\
            def hamiltonian_scale():
                return -2.7
        """)
        findings = _check(UnitsChecker(), m)
        assert [f.code for f in findings] == ["RPA201"]
        assert "T_HOPPING_EV" in findings[0].message

    def test_truncated_copies_match(self):
        assert match_constant(1.602e-19) == "Q_E"
        assert match_constant(8.85e-12) == "EPS_0"
        assert match_constant(0.0259) == "KT_ROOM_EV"
        assert match_constant(1.5) is None

    def test_integers_never_match(self, tmp_path):
        m = _module(tmp_path, """\
            N_POINTS = 300
        """)
        assert _check(UnitsChecker(), m) == []

    def test_constants_module_is_exempt(self, tmp_path):
        m = _module(tmp_path, """\
            T_HOPPING_EV = 2.7
        """, rel="src/repro/constants.py")
        assert _check(UnitsChecker(), m) == []


class TestLayering:
    def test_dag_transitive_closure(self):
        assert "constants" in allowed_imports("negf")
        assert "device" in allowed_imports("cli")
        assert "device" not in allowed_imports("negf")
        assert allowed_imports("constants") == frozenset()

    def test_rpa301_upward_import(self, tmp_path):
        m = _module(tmp_path, """\
            from repro.device.tables import DeviceTable
        """, rel="src/repro/negf/example.py")
        findings = _check(LayeringChecker(), m)
        assert [f.code for f in findings] == ["RPA301"]
        assert "'negf' may not import 'device'" in findings[0].message

    def test_rpa301_unknown_package(self, tmp_path):
        m = _module(tmp_path, """\
            from repro.widgets import thing
        """, rel="src/repro/negf/example.py")
        findings = _check(LayeringChecker(), m)
        assert [f.code for f in findings] == ["RPA301"]
        assert "layer DAG" in findings[0].message

    def test_downward_import_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            from repro.atomistic.lattice import ArmchairGNR
            from repro.constants import T_HOPPING_EV
        """, rel="src/repro/negf/example.py")
        assert _check(LayeringChecker(), m) == []

    def test_root_facade_is_exempt(self, tmp_path):
        m = _module(tmp_path, """\
            from repro.cli import main
        """, rel="src/repro/__init__.py")
        assert _check(LayeringChecker(), m) == []

    def test_rpa302_module_level_cycle(self, tmp_path):
        a = _module(tmp_path, """\
            from repro.negf.beta import g
        """, rel="src/repro/negf/alpha.py")
        b = _module(tmp_path, """\
            from repro.negf.alpha import f
        """, rel="src/repro/negf/beta.py")
        findings = _check(LayeringChecker(), a, b)
        assert [f.code for f in findings] == ["RPA302"]
        assert "repro.negf.alpha" in findings[0].message

    def test_function_level_import_breaks_cycle(self, tmp_path):
        # A deferred import is the accepted way to break a runtime cycle,
        # so it must not count as an RPA302 edge.
        a = _module(tmp_path, """\
            def late():
                from repro.negf.beta import g
                return g
        """, rel="src/repro/negf/alpha.py")
        b = _module(tmp_path, """\
            from repro.negf.alpha import late
        """, rel="src/repro/negf/beta.py")
        assert _check(LayeringChecker(), a, b) == []

    def test_dag_has_no_cycles(self):
        for package in LAYER_DAG:
            assert package not in allowed_imports(package)


class TestContracts:
    def test_rpa401_missing_annotations(self, tmp_path):
        m = _module(tmp_path, """\
            def solve(bias, steps: int = 3) -> float:
                return 0.0

            def report(x: float):
                return x
        """)
        findings = [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA401"]
        assert len(findings) == 2
        assert "'solve'" in findings[0].message
        assert "'report'" in findings[1].message

    def test_private_and_dunder_are_exempt(self, tmp_path):
        m = _module(tmp_path, """\
            def _helper(x):
                return x

            class Model:
                def __init__(self, geometry):
                    self.geometry = geometry
        """)
        assert not [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA401"]

    def test_rpa402_mutable_default(self, tmp_path):
        m = _module(tmp_path, """\
            def accumulate(values: list | None = None,
                           sink: list = []) -> list:
                return sink
        """)
        findings = [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA402"]
        assert len(findings) == 1
        assert "'accumulate'" in findings[0].message

    def test_rpa403_mutable_result_dataclass(self, tmp_path):
        m = _module(tmp_path, """\
            from dataclasses import dataclass

            @dataclass
            class SweepResult:
                value: float
        """)
        findings = [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA403"]
        assert len(findings) == 1
        assert "SweepResult" in findings[0].message

    def test_frozen_result_dataclass_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepResult:
                value: float
        """)
        assert not [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA403"]

    def test_rpa404_missing_package_docstring(self, tmp_path):
        m = _module(tmp_path, """\
            from repro.negf.scf import SCFResult
        """, rel="src/repro/negf/__init__.py")
        findings = [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA404"]
        assert len(findings) == 1
        assert "repro.negf" in findings[0].message
        assert findings[0].line == 1

    def test_rpa404_whitespace_docstring_still_flagged(self, tmp_path):
        m = _module(tmp_path, '"   "\n', rel="src/repro/negf/__init__.py")
        assert [f.code for f in _check(ContractsChecker(), m)
                if f.code == "RPA404"] == ["RPA404"]

    def test_rpa404_documented_package_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            '''Transport layer: NEGF kernels.'''
        """, rel="src/repro/negf/__init__.py")
        assert not [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA404"]

    def test_rpa404_plain_module_is_exempt(self, tmp_path):
        # Only package __init__ files need docstrings under RPA404.
        m = _module(tmp_path, """\
            X = 1
        """, rel="src/repro/negf/example.py")
        assert not [f for f in _check(ContractsChecker(), m)
                    if f.code == "RPA404"]


class TestResilience:
    def test_rpa501_broad_except_flagged(self, tmp_path):
        m = _module(tmp_path, """\
            def risky():
                try:
                    return 1 / 0
                except Exception:
                    return None
        """)
        codes = [f.code for f in _check(ResilienceChecker(), m)]
        assert codes == ["RPA501"]

    def test_rpa501_bare_except_flagged(self, tmp_path):
        m = _module(tmp_path, """\
            def risky():
                try:
                    return 1 / 0
                except:
                    return None
        """)
        codes = [f.code for f in _check(ResilienceChecker(), m)]
        assert codes == ["RPA501"]

    def test_rpa501_tuple_with_broad_member_flagged(self, tmp_path):
        m = _module(tmp_path, """\
            def risky():
                try:
                    return 1 / 0
                except (ValueError, BaseException):
                    return None
        """)
        codes = [f.code for f in _check(ResilienceChecker(), m)]
        assert codes == ["RPA501"]

    def test_narrow_except_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            def careful():
                try:
                    return 1 / 0
                except ZeroDivisionError:
                    return None
        """)
        assert _check(ResilienceChecker(), m) == []

    def test_cleanup_then_reraise_is_clean(self, tmp_path):
        m = _module(tmp_path, """\
            import os

            def atomic_write(tmp):
                try:
                    os.replace(tmp, "final")
                except BaseException:
                    os.unlink(tmp)
                    raise
        """)
        assert _check(ResilienceChecker(), m) == []

    def test_resilience_module_is_exempt(self, tmp_path):
        m = _module(tmp_path, """\
            def absorb():
                try:
                    return 1 / 0
                except Exception:
                    return None
        """, rel="src/repro/runtime/resilience.py")
        assert _check(ResilienceChecker(), m) == []
