"""Tests of the lint CLI modes: SARIF output, --select, --strict,
--changed."""

from __future__ import annotations

import json
import subprocess
import textwrap

from repro.analysis.cli import changed_files, main as lint_main


def _seed(tmp_path, rel="src/repro/device/bad.py",
          source="HOPPING = 2.7\n"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestSarif:
    def test_document_shape(self, tmp_path, capsys):
        bad = _seed(tmp_path)
        assert lint_main([str(bad), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (rule,) = run["tool"]["driver"]["rules"]
        assert rule["id"] == "RPA201"
        (result,) = run["results"]
        assert result["ruleId"] == "RPA201"
        assert result["ruleIndex"] == 0
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] >= 1

    def test_clean_tree_yields_empty_results(self, tmp_path, capsys):
        clean = _seed(tmp_path, source="X = 1\n")
        assert lint_main([str(clean), "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []
        assert document["runs"][0]["tool"]["driver"]["rules"] == []


class TestSelect:
    def test_select_filters_out_other_families(self, tmp_path, capsys):
        bad = _seed(tmp_path)  # RPA201 units finding
        assert lint_main([str(bad), "--select", "RPA6,RPA7,RPA8"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_select_keeps_matching_family(self, tmp_path, capsys):
        bad = _seed(tmp_path)
        assert lint_main([str(bad), "--select", "RPA2"]) == 1
        assert "RPA201" in capsys.readouterr().out

    def test_parse_errors_always_reported(self, tmp_path, capsys):
        broken = _seed(tmp_path, source="def broken(:\n")
        assert lint_main([str(broken), "--select", "RPA6"]) == 1
        assert "RPA001" in capsys.readouterr().out


class TestStrict:
    def test_strict_escalates_exit_code(self, tmp_path, capsys):
        bad = _seed(tmp_path)
        assert lint_main([str(bad), "--strict"]) == 2

    def test_strict_clean_still_zero(self, tmp_path, capsys):
        clean = _seed(tmp_path, source="X = 1\n")
        assert lint_main([str(clean), "--strict"]) == 0


class TestChanged:
    def _git(self, cwd, *args):
        subprocess.run(["git", *args], cwd=cwd, check=True,
                       capture_output=True)

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "config", "user.email", "t@example.com")
        self._git(tmp_path, "config", "user.name", "t")
        return tmp_path

    def test_changed_files_lists_modified_and_untracked(self, tmp_path,
                                                        monkeypatch):
        repo = self._repo(tmp_path)
        tracked = _seed(repo, "src/repro/device/a.py", "X = 1\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        tracked.write_text("X = 2\n")
        untracked = _seed(repo, "src/repro/device/b.py", "Y = 1\n")
        monkeypatch.chdir(repo)
        subset = changed_files("HEAD", ["src/repro"])
        assert subset is not None
        assert sorted(subset) == sorted([
            "src/repro/device/a.py", str(untracked.relative_to(repo))])

    def test_changed_files_respects_scope(self, tmp_path, monkeypatch):
        repo = self._repo(tmp_path)
        _seed(repo, "src/repro/device/a.py", "X = 1\n")
        _seed(repo, "scripts/tool.py", "Y = 1\n")
        monkeypatch.chdir(repo)
        subset = changed_files("HEAD", ["src/repro"])
        # Only the in-scope untracked file; HEAD does not resolve in an
        # empty repo so fall back may kick in — accept either None
        # (full-run fallback) or the scoped subset.
        if subset is not None:
            assert subset == ["src/repro/device/a.py"]

    def test_changed_files_returns_none_outside_git(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert changed_files("HEAD", ["src/repro"]) is None

    def test_cli_reports_empty_change_set(self, tmp_path, monkeypatch,
                                          capsys):
        repo = self._repo(tmp_path)
        _seed(repo, "src/repro/device/a.py", "X = 1\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        monkeypatch.chdir(repo)
        assert lint_main(["src/repro", "--changed"]) == 0
        assert "no .py files changed" in capsys.readouterr().out

    def test_cli_lints_only_changed_files(self, tmp_path, monkeypatch,
                                          capsys):
        repo = self._repo(tmp_path)
        clean = _seed(repo, "src/repro/device/a.py", "X = 1\n")
        bad = _seed(repo, "src/repro/device/b.py", "HOPPING = 2.7\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        bad.write_text("HOPPING = 2.7\nT_GHZ = 2.7\n")
        monkeypatch.chdir(repo)
        assert lint_main(["src/repro", "--changed", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "b.py" in out
        assert str(clean.name) not in out
        # Only the changed file was analysed.
        assert "1 file(s)" in out

    def test_changed_mode_keeps_project_context(self, tmp_path,
                                                monkeypatch, capsys):
        # Regression: analysing only the changed subset hands the
        # dataflow checkers a truncated project — content_key no
        # longer resolves through the runtime facade and a sound key
        # looks ad-hoc (RPA603), and package imports appear cyclic
        # (RPA302).  --changed must parse the full path set and only
        # narrow the *reporting*.
        repo = self._repo(tmp_path)
        _seed(repo, "src/repro/runtime/cache.py", textwrap.dedent("""\
            def content_key(*parts):
                return "-".join(str(p) for p in parts)

            class ArtifactCache:
                def put(self, key, value):
                    return None
            """))
        _seed(repo, "src/repro/runtime/__init__.py", textwrap.dedent("""\
            \"\"\"Runtime layer: cache stub.\"\"\"
            from repro.runtime.cache import ArtifactCache, content_key
            """))
        tables = _seed(repo, "src/repro/device/tables.py",
                       textwrap.dedent("""\
            from repro.runtime import ArtifactCache, content_key

            def store(geometry: str) -> str:
                key = content_key("table", geometry)
                ArtifactCache().put(key, geometry)
                return key
            """))
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        tables.write_text(tables.read_text() + "\nVERSION = 1\n")
        monkeypatch.chdir(repo)
        assert lint_main(["src/repro", "--changed", "HEAD"]) == 0
        out = capsys.readouterr().out
        # Reporting still narrows to the one changed file.
        assert "1 file(s)" in out

    def test_cli_falls_back_on_bad_ref(self, tmp_path, monkeypatch,
                                       capsys):
        repo = self._repo(tmp_path)
        _seed(repo, "src/repro/device/a.py", "HOPPING = 2.7\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        monkeypatch.chdir(repo)
        # An unresolvable ref degrades to a full run, not a skipped one.
        assert lint_main(["src/repro", "--changed",
                          "no-such-ref"]) == 1
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "RPA201" in captured.out
