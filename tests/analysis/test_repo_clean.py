"""The repo's own tree must pass its own linter with no baseline."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_TREE = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def repo_report():
    return run_analysis([SRC_TREE])


def test_src_tree_is_clean(repo_report):
    rendered = "\n".join(f.render() for f in repo_report.findings)
    assert repo_report.clean, f"lint findings in src/repro:\n{rendered}"


def test_every_file_was_analysed(repo_report):
    n_py = len([p for p in SRC_TREE.rglob("*.py")
                if "__pycache__" not in p.parts])
    assert repo_report.n_files == n_py


def test_cli_exit_code_is_zero(capsys):
    assert lint_main([str(SRC_TREE)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_exit_code_on_findings(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "device" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("HOPPING = 2.7\n")
    assert lint_main([str(bad)]) == 1
    assert "RPA201" in capsys.readouterr().out
