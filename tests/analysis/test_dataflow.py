"""Tests of the dataflow layer: CFG, reaching defs, call graph, taint."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.dataflow import (
    Definition,
    build_call_graph,
    build_cfg,
    call_results_flowing_into,
    compute_reaching_definitions,
    names_in,
    param_flows_into,
)
from repro.analysis.engine import Project, load_module


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


def _project(tmp_path, files: dict[str, str]) -> Project:
    modules = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        module, err = load_module(path)
        assert err is None, err
        modules.append(module)
    return Project(modules=modules)


class TestCFG:
    def test_if_else_branches_join(self):
        cfg = build_cfg(_func("""\
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
        """))
        if_node = next(n for n in cfg.nodes if n.kind == "if")
        # The test node branches into both arms.
        assert len(if_node.succs) == 2
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        # Both assignment nodes re-join at the return.
        assert len(ret.preds) == 2
        assert cfg.exit in ret.succs

    def test_if_without_else_falls_through(self):
        cfg = build_cfg(_func("""\
            def f(a):
                if a:
                    x = 1
                return a
        """))
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        # Predecessors: the assignment and the if test itself.
        assert len(ret.preds) == 2

    def test_while_loop_back_edge(self):
        cfg = build_cfg(_func("""\
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
        """))
        header = next(n for n in cfg.nodes if n.kind == "while")
        body = next(n for n in cfg.nodes
                    if n.kind == "stmt" and isinstance(n.stmt, ast.Assign)
                    and n.index > header.index)
        assert header.index in body.succs       # back edge
        assert body.index in header.succs       # loop entry

    def test_break_exits_loop(self):
        cfg = build_cfg(_func("""\
            def f(items):
                for x in items:
                    if x:
                        break
                return 0
        """))
        jump = next(n for n in cfg.nodes if n.kind == "jump")
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        assert ret.index in jump.succs

    def test_try_body_edges_into_every_handler(self):
        cfg = build_cfg(_func("""\
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    c = 3
                except KeyError:
                    d = 4
                return 0
        """))
        handlers = [n for n in cfg.nodes if n.kind == "except"]
        assert len(handlers) == 2
        body_nodes = [n for n in cfg.nodes
                      if n.kind == "stmt" and isinstance(n.stmt, ast.Assign)
                      and ast.unparse(n.stmt.targets[0]) in ("a", "b")]
        for handler in handlers:
            for body in body_nodes:
                assert handler.index in body.succs

    def test_return_reaches_exit_only(self):
        cfg = build_cfg(_func("""\
            def f():
                return 1
                x = 2
        """))
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        assert ret.succs == [cfg.exit]
        # The unreachable statement has a node but no incoming edges.
        dead = next(n for n in cfg.nodes
                    if n.kind == "stmt" and isinstance(n.stmt, ast.Assign))
        assert dead.preds == []


class TestReachingDefinitions:
    def test_branch_defs_both_reach_join(self):
        func = _func("""\
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        defs = rd.reaching_for(ret.index, "x")
        assert len(defs) == 2

    def test_redefinition_kills_previous(self):
        func = _func("""\
            def f():
                x = 1
                x = 2
                return x
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        defs = rd.reaching_for(ret.index, "x")
        assert len(defs) == 1
        second = next(n for n in cfg.nodes
                      if n.kind == "stmt" and n.index == max(
                          m.index for m in cfg.nodes if m.kind == "stmt"))
        assert defs == frozenset({Definition(name="x", node=second.index)})

    def test_loop_carried_definition_reaches_header(self):
        func = _func("""\
            def f(items):
                total = 0
                for i in items:
                    total = total + i
                return total
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        header = next(n for n in cfg.nodes if n.kind == "for")
        # Both the initialization and the loop-body rebinding reach the
        # loop header (the back edge carries the second one around).
        assert len(rd.reaching_for(header.index, "total")) == 2

    def test_parameters_defined_at_entry(self):
        func = _func("""\
            def f(a, b, *args, c=1, **kw):
                return a
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        entry_defs = {d.name for d in rd.defs_at(cfg.entry)}
        assert entry_defs == {"a", "b", "args", "c", "kw"}

    def test_use_def_chain_at_return(self):
        func = _func("""\
            def f(a):
                x = a
                return x
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        ret = next(n for n in cfg.nodes if n.kind == "terminator")
        chain = rd.use_def_chain(ret.index)
        assert set(chain) == {"x"}
        (definition,) = chain["x"]
        assert cfg.nodes[definition.node].kind == "stmt"

    def test_except_name_is_a_definition(self):
        func = _func("""\
            def f():
                try:
                    x = 1
                except ValueError as exc:
                    return exc
                return x
        """)
        cfg = build_cfg(func)
        rd = compute_reaching_definitions(cfg)
        handler_ret = next(
            n for n in cfg.nodes if n.kind == "terminator"
            and isinstance(n.stmt, ast.Return)
            and isinstance(n.stmt.value, ast.Name)
            and n.stmt.value.id == "exc")
        assert rd.reaching_for(handler_ret.index, "exc")


class TestCallGraph:
    def test_cross_module_edge(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/helpers.py": """\
                def helper():
                    return 1
            """,
            "src/repro/pkg/caller.py": """\
                from repro.pkg.helpers import helper

                def run():
                    return helper()
            """,
        })
        graph = build_call_graph(project)
        assert "repro.pkg.helpers.helper" in \
            graph.callees("repro.pkg.caller.run")

    def test_facade_reexport_is_chased(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/impl.py": """\
                def thing():
                    return 1
            """,
            "src/repro/pkg/__init__.py": """\
                from repro.pkg.impl import thing
            """,
            "src/repro/other/user.py": """\
                from repro.pkg import thing

                def run():
                    return thing()
            """,
        })
        graph = build_call_graph(project)
        assert "repro.pkg.impl.thing" in \
            graph.callees("repro.other.user.run")

    def test_partial_dispatch_edge(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/work.py": """\
                from functools import partial

                def worker(a, x):
                    return a + x

                def run(items):
                    fn = partial(worker, 2)
                    return [fn(x) for x in items]
            """,
        })
        graph = build_call_graph(project)
        assert "repro.pkg.work.worker" in \
            graph.callees("repro.pkg.work.run")

    def test_local_instance_method_edge(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/cachey.py": """\
                class Store:
                    def put(self, key):
                        return key

                def run():
                    store = Store()
                    return store.put("k")
            """,
        })
        graph = build_call_graph(project)
        assert "repro.pkg.cachey.Store.put" in \
            graph.callees("repro.pkg.cachey.run")

    def test_env_reads_direct_and_via_constant(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/envy.py": """\
                import os

                THING_ENV = "REPRO_THING"

                def direct():
                    return os.environ.get("REPRO_DIRECT")

                def via_constant():
                    return os.getenv(THING_ENV)
            """,
        })
        graph = build_call_graph(project)
        assert graph.env_reads["repro.pkg.envy.direct"] == {"REPRO_DIRECT"}
        assert graph.env_reads["repro.pkg.envy.via_constant"] == \
            {"REPRO_THING"}

    def test_transitive_env_reads_cross_module(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/pkg/deep.py": """\
                import os

                def leaf():
                    return os.environ.get("REPRO_DEEP")
            """,
            "src/repro/pkg/top.py": """\
                from repro.pkg.deep import leaf

                def entry():
                    return leaf()
            """,
        })
        graph = build_call_graph(project)
        assert "REPRO_DEEP" in \
            graph.transitive_env_reads("repro.pkg.top.entry")
        # Direct reads of the top function itself stay empty.
        assert graph.env_reads["repro.pkg.top.entry"] == set()


class TestTaintQueries:
    def _sink(self, func: ast.FunctionDef, name: str) -> ast.Call:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == name:
                return node
        raise AssertionError(f"no call to {name}")

    def test_param_flows_directly(self):
        func = _func("""\
            def f(geometry):
                return content_key("t", geometry)
        """)
        sink = self._sink(func, "content_key")
        assert param_flows_into(func, "geometry", sink)

    def test_param_flows_through_conditional_rebinding(self):
        func = _func("""\
            def f(engine=None):
                if engine is None:
                    engine = resolve_engine(None)
                return content_key("t", engine)
        """)
        sink = self._sink(func, "content_key")
        assert param_flows_into(func, "engine", sink)

    def test_param_does_not_flow(self):
        func = _func("""\
            def f(geometry, workers):
                pool = make_pool(workers)
                return content_key("t", geometry)
        """)
        sink = self._sink(func, "content_key")
        assert param_flows_into(func, "geometry", sink)
        assert not param_flows_into(func, "workers", sink)

    def test_call_result_flows_through_binding(self):
        func = _func("""\
            def f(geometry):
                ws = warmstart_enabled()
                return content_key("t", geometry, ws)
        """)
        sink = self._sink(func, "content_key")

        def resolve(dotted: str) -> str | None:
            return dotted if dotted == "warmstart_enabled" else None

        assert call_results_flowing_into(func, sink, resolve) == \
            frozenset({"warmstart_enabled"})

    def test_call_result_direct_in_args(self):
        func = _func("""\
            def f(geometry):
                return content_key("t", geometry, warmstart_enabled())
        """)
        sink = self._sink(func, "content_key")
        got = call_results_flowing_into(
            func, sink,
            lambda d: d if d == "warmstart_enabled" else None)
        assert got == frozenset({"warmstart_enabled"})

    def test_unrelated_call_does_not_reach(self):
        func = _func("""\
            def f(geometry):
                ws = warmstart_enabled()
                log(ws)
                return content_key("t", geometry)
        """)
        sink = self._sink(func, "content_key")
        got = call_results_flowing_into(
            func, sink,
            lambda d: d if d == "warmstart_enabled" else None)
        assert got == frozenset()

    def test_names_in_collects_load_names(self):
        expr = ast.parse("a + b.c + f(d)", mode="eval").body
        assert names_in(expr) == {"a", "b", "f", "d"}
