"""Tests of the RPA8xx hot-path hygiene family."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import run_analysis


def _run(tmp_path, files: dict[str, str]):
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_analysis(paths, select=["RPA8"])


class TestRPA801:
    def test_unguarded_obs_record_in_loop_fires(self, tmp_path):
        # Seeded regression: counter calls in loops must stay behind
        # the ACTIVE flag or the disabled path pays per iteration.
        report = _run(tmp_path, {"src/repro/device/loopy.py": """\
            from repro import obs

            def run(items):
                for x in items:
                    obs.incr("cells")
        """})
        assert [f.code for f in report.findings] == ["RPA801"]

    def test_guarded_record_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/loopy.py": """\
            from repro import obs

            def run(items):
                for x in items:
                    if obs.ACTIVE:
                        obs.incr("cells")
        """})
        assert report.clean

    def test_record_outside_loop_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/loopy.py": """\
            from repro import obs

            def run(items):
                obs.incr("calls")
                return list(items)
        """})
        assert report.clean

    def test_while_loop_also_checked(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/loopy.py": """\
            from repro import obs

            def run(n):
                while n > 0:
                    obs.gauge("n", n)
                    n = n - 1
        """})
        assert [f.code for f in report.findings] == ["RPA801"]

    def test_obs_package_itself_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/obs/emit.py": """\
            def flush(records):
                for record in records:
                    obs.incr("flushed")
        """})
        assert report.clean


class TestRPA802:
    def test_scalar_kernel_in_loop_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/scan.py": """\
            from repro.negf.self_energy import sancho_rubio_surface_gf

            def scan(energies, h00, h01):
                out = []
                for e in energies:
                    out.append(sancho_rubio_surface_gf(e, h00, h01))
                return out
        """})
        assert [f.code for f in report.findings] == ["RPA802"]
        assert "sancho_rubio_surface_gf_batched" in \
            report.findings[0].message

    def test_scalar_kernel_in_comprehension_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/scan.py": """\
            from repro.negf.self_energy import sancho_rubio_surface_gf

            def scan(energies, h00, h01):
                return [sancho_rubio_surface_gf(e, h00, h01)
                        for e in energies]
        """})
        assert [f.code for f in report.findings] == ["RPA802"]

    def test_comprehension_inside_loop_fires_once(self, tmp_path):
        # The loop pass and the comprehension pass both see this call;
        # the checker must deduplicate.
        report = _run(tmp_path, {"src/repro/device/scan.py": """\
            from repro.negf.self_energy import sancho_rubio_surface_gf

            def scan(grids, h00, h01):
                out = []
                for energies in grids:
                    out.append([sancho_rubio_surface_gf(e, h00, h01)
                                for e in energies])
                return out
        """})
        assert [f.code for f in report.findings] == ["RPA802"]

    def test_defining_module_is_exempt(self, tmp_path):
        # Batched kernels and retry ladders legitimately wrap their own
        # scalar form.
        report = _run(tmp_path, {"src/repro/negf/self_energy.py": """\
            def sancho_rubio_surface_gf(energy, h00, h01):
                return energy

            def sancho_rubio_surface_gf_batched(energies, h00, h01):
                return [sancho_rubio_surface_gf(e, h00, h01)
                        for e in energies]
        """})
        assert report.clean

    def test_per_energy_method_call_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/scan.py": """\
            def scan(device, energies):
                return [device.transmission_at(e) for e in energies]
        """})
        assert [f.code for f in report.findings] == ["RPA802"]
        assert ".transport()" in report.findings[0].message

    def test_noqa_suppresses_legacy_path(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/scan.py": """\
            def scan(device, energies):
                return [device.transmission_at(e)  # repro: noqa[RPA802]
                        for e in energies]
        """})
        assert report.clean
        assert report.n_noqa_suppressed == 1


class TestRPA803:
    def test_allocation_in_batched_loop_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/negf/kernels.py": """\
            import numpy as np

            def solve_batched(z, eps, n):
                for _ in range(50):
                    rhs = np.zeros((z.shape[0], n, n), dtype=complex)
                    z = z - eps @ rhs
                return z
        """})
        assert [f.code for f in report.findings] == ["RPA803"]

    def test_stacked_identity_in_batched_loop_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/negf/kernels.py": """\
            from repro.negf.utils import stacked_identity

            def solve_batched(z, eps, n):
                for _ in range(50):
                    z = z - stacked_identity(z.shape[0], n)
                return z
        """})
        assert [f.code for f in report.findings] == ["RPA803"]

    def test_hoisted_allocation_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/negf/kernels.py": """\
            from repro.negf.utils import stacked_identity

            def solve_batched(z, eps, n):
                ident = stacked_identity(z.shape[0], n)
                for _ in range(50):
                    z = z - ident
                return z
        """})
        assert report.clean

    def test_non_batched_function_not_flagged(self, tmp_path):
        # The allocation-in-loop rule is scoped to *_batched kernels;
        # ordinary functions allocate freely.
        report = _run(tmp_path, {"src/repro/device/setup.py": """\
            import numpy as np

            def assemble(blocks, n):
                out = []
                for block in blocks:
                    out.append(np.zeros((n, n)))
                return out
        """})
        assert report.clean

    def test_numba_backend_module_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/negf/backend_numba.py": """\
            import numpy as np

            def solve_batched(z, n):
                for _ in range(50):
                    z = z + np.zeros((n, n))
                return z
        """})
        assert report.clean
