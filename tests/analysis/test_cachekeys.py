"""Tests of the RPA6xx cache-key soundness family.

Every seeded project carries stub ``repro.runtime`` modules so the
checker resolves ``content_key``/``SweepCheckpoint`` through the same
facade re-export chain the real tree uses.
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import Project, load_module, run_analysis


_RUNTIME_STUBS = {
    "src/repro/runtime/cache.py": """\
        def content_key(*parts):
            return "digest"
    """,
    "src/repro/runtime/resilience.py": """\
        class SweepCheckpoint:
            def __init__(self, key, interval=0):
                self.key = key
    """,
    "src/repro/runtime/accel.py": """\
        import os

        def warmstart_enabled():
            return os.environ.get("REPRO_NO_WARMSTART") is None
    """,
    "src/repro/runtime/__init__.py": """\
        from repro.runtime.accel import warmstart_enabled
        from repro.runtime.cache import content_key
        from repro.runtime.resilience import SweepCheckpoint
    """,
}


def _run(tmp_path, files: dict[str, str]):
    paths = []
    for rel, source in {**_RUNTIME_STUBS, **files}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_analysis(paths, select=["RPA6"])


class TestRPA601:
    def test_param_missing_from_key_fires(self, tmp_path):
        # Seeded regression: a table_cache_key clone with the engine
        # dropped from the hash must be caught.
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key, warmstart_enabled

            def table_cache_key(geometry, vg_grid, vd_grid, n_modes,
                                engine=None):
                return content_key("device-table", geometry, vg_grid,
                                   vd_grid, n_modes, warmstart_enabled())
        """})
        assert [f.code for f in report.findings] == ["RPA601"]
        (finding,) = report.findings
        assert "'engine'" in finding.message
        assert finding.line == 4  # the parameter's own line

    def test_all_params_keyed_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def table_cache_key(geometry, n_modes, engine):
                return content_key("device-table", geometry, n_modes,
                                   engine)
        """})
        assert report.clean

    def test_conditional_rebinding_counts_as_flow(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def resolve_engine(engine):
                return engine or "semianalytic"

            def table_cache_key(geometry, engine=None):
                if engine is None:
                    engine = resolve_engine(engine)
                return content_key("device-table", geometry, engine)
        """})
        assert report.clean

    def test_nokey_annotation_suppresses(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def build(
                geometry,
                workers=None,  # repro: nokey[RPA601] parallelism degree, results are order-independent
            ):
                return content_key("build", geometry)
        """})
        assert report.clean
        assert report.n_nokey_suppressed == 1

    def test_nokey_without_reason_does_not_suppress(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def build(
                geometry,
                workers=None,  # repro: nokey[RPA601]
            ):
                return content_key("build", geometry)
        """})
        assert [f.code for f in report.findings] == ["RPA601"]
        assert report.n_nokey_suppressed == 0

    def test_nokey_rejects_non_rpa6_codes(self, tmp_path):
        # nokey is a cache-key design statement, not a general escape
        # hatch: naming another family suppresses nothing.
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def build(
                geometry,
                workers=None,  # repro: nokey[RPA701] wrong family
            ):
                return content_key("build", geometry)
        """})
        assert [f.code for f in report.findings] == ["RPA601"]

    def test_underscore_params_are_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tablecopy.py": """\
            from repro.runtime import content_key

            def build(geometry, _scratch=None):
                return content_key("build", geometry)
        """})
        assert report.clean


class TestRPA602:
    def test_uncovered_env_read_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/enginey.py": """\
            import os

            from repro.runtime import content_key

            def resolve_engine():
                return os.environ.get("REPRO_ENGINE", "semianalytic")

            def build(geometry):
                key = content_key("build", geometry)
                engine = resolve_engine()
                return key, engine
        """})
        codes = [f.code for f in report.findings]
        assert "RPA602" in codes
        finding = next(f for f in report.findings if f.code == "RPA602")
        assert "REPRO_ENGINE" in finding.message

    def test_threading_resolved_value_covers(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/enginey.py": """\
            import os

            from repro.runtime import content_key

            def resolve_engine():
                return os.environ.get("REPRO_ENGINE", "semianalytic")

            def build(geometry):
                engine = resolve_engine()
                key = content_key("build", geometry, engine)
                return key, engine
        """})
        assert report.clean

    def test_result_neutral_env_not_required(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/worky.py": """\
            import os

            from repro.runtime import content_key

            def resolve_workers():
                return int(os.environ.get("REPRO_WORKERS", "1"))

            def build(geometry):
                n = resolve_workers()
                return content_key("build", geometry), n
        """})
        assert report.clean

    def test_key_builder_covers_its_own_reads(self, tmp_path):
        # Calling a builder that itself hashes warmstart_enabled()
        # covers REPRO_NO_WARMSTART at the call site.
        report = _run(tmp_path, {"src/repro/device/warm.py": """\
            from repro.runtime import content_key, warmstart_enabled

            def make_key(geometry):
                return content_key("w", geometry, warmstart_enabled())

            def build(geometry):
                ws = warmstart_enabled()
                key = make_key(geometry)
                return key, ws
        """})
        assert report.clean


class TestRPA603:
    def test_ad_hoc_key_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/storey.py": """\
            def store_all(cache, items):
                for i, item in enumerate(items):
                    cache.put(f"item-{i}", item)
        """})
        assert [f.code for f in report.findings] == ["RPA603"]

    def test_content_key_derived_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/storey.py": """\
            from repro.runtime import content_key

            def store(cache, geometry, item):
                cache.put(content_key("item", geometry), item)
        """})
        # The seed deliberately leaves 'cache'/'item' out of the hash,
        # which RPA601 flags; the provenance rule itself must be quiet.
        assert not [f for f in report.findings if f.code == "RPA603"]

    def test_local_binding_of_content_key_is_clean(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/storey.py": """\
            from repro.runtime import content_key, SweepCheckpoint

            def checkpointed(geometry):
                key = content_key("sweep", geometry)
                return SweepCheckpoint(key, interval=4)
        """})
        assert report.clean

    def test_parameter_key_is_callers_responsibility(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/storey.py": """\
            def store(cache, key, item):
                cache.put(key, item)
        """})
        assert report.clean

    def test_checkpoint_with_ad_hoc_key_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/storey.py": """\
            from repro.runtime import SweepCheckpoint

            def checkpointed(run_index):
                return SweepCheckpoint(f"run-{run_index}", interval=4)
        """})
        assert [f.code for f in report.findings] == ["RPA603"]


class TestExemptions:
    def test_runtime_itself_is_exempt(self, tmp_path):
        # repro.runtime implements the mechanism; its internals are not
        # key-computing consumers.
        paths = []
        for rel, source in _RUNTIME_STUBS.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            paths.append(path)
        report = run_analysis(paths, select=["RPA6"])
        assert report.clean

    def test_methods_skip_self(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/clsy.py": """\
            from repro.runtime import content_key

            class Table:
                def key(self, geometry):
                    return content_key("t", geometry)
        """})
        assert report.clean
