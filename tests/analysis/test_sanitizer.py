"""Numerical-sanitizer tests: guards, hot-path hooks, activation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.errors import ReproError, SanitizerError
from repro.negf.greens import dense_retarded_gf, recursive_greens_function
from repro.negf.scf import SCFOptions, self_consistent_loop


@pytest.fixture()
def sanitizer_on(monkeypatch):
    """Activate the sanitizer for one test without touching os.environ."""
    monkeypatch.setattr(sanitize, "ACTIVE", True)


def _chain(n_blocks=4, size=2):
    rng = np.random.default_rng(7)
    diag = []
    for _ in range(n_blocks):
        m = rng.normal(size=(size, size))
        diag.append((m + m.T).astype(complex))
    coup = [rng.normal(size=(size, size)).astype(complex)
            for _ in range(n_blocks - 1)]
    sigma = -0.1j * np.eye(size)
    return diag, coup, sigma, sigma.copy()


class TestGuards:
    def test_check_finite_passes_and_fails(self, sanitizer_on):
        sanitize.check_finite(np.ones(4), "op", "x")
        with pytest.raises(SanitizerError, match="non-finite"):
            sanitize.check_finite(np.array([1.0, np.nan]), "op", "x")

    def test_check_finite_names_energy_point(self, sanitizer_on):
        energies = np.array([0.1, 0.2, 0.3])
        values = np.ones((3, 5))
        values[1, 2] = np.inf
        with pytest.raises(SanitizerError) as excinfo:
            sanitize.check_finite(values, "kernel", "G^r",
                                  energies_ev=energies)
        assert excinfo.value.energy_ev == pytest.approx(0.2)
        assert "E=0.2 eV" in str(excinfo.value)

    def test_check_hermitian(self, sanitizer_on):
        h = np.array([[0.0, 1.0], [1.0, 0.5]])
        sanitize.check_hermitian(h, "op", "H")
        h[0, 1] = 2.0
        with pytest.raises(SanitizerError, match="hermiticity"):
            sanitize.check_hermitian(h, "op", "H")

    def test_check_transmission_bounds(self, sanitizer_on):
        sanitize.check_transmission(np.array([0.0, 0.5, 2.0]), 2.0, "op")
        with pytest.raises(SanitizerError, match="out of bounds"):
            sanitize.check_transmission(np.array([0.5, 2.5]), 2.0, "op")
        with pytest.raises(SanitizerError, match="out of bounds"):
            sanitize.check_transmission(np.array([-0.1]), 2.0, "op")

    def test_check_current_conservation(self, sanitizer_on):
        sanitize.check_current_conservation(1e-6, 1e-6 * (1 + 1e-9), "op")
        with pytest.raises(SanitizerError, match="current-conservation"):
            sanitize.check_current_conservation(1e-6, 1.1e-6, "op")

    def test_error_carries_context_and_hierarchy(self, sanitizer_on):
        with pytest.raises(SanitizerError) as excinfo:
            sanitize.check_finite(np.array([np.nan]), "solve", "charge",
                                  bias=sanitize.format_bias(vg=0.4, vd=0.3))
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert err.operator == "solve"
        assert err.quantity == "charge"
        assert "VG=0.4 V" in str(err) and "VD=0.3 V" in str(err)


class TestHotPathHooks:
    def test_rgf_clean_run_passes(self, sanitizer_on):
        diag, coup, sl, sr = _chain()
        result = recursive_greens_function(0.3, diag, coup, sl, sr)
        assert np.isfinite(result.transmission)

    def test_rgf_catches_nonhermitian_block(self, sanitizer_on):
        diag, coup, sl, sr = _chain()
        diag[2][0, 1] += 0.5
        with pytest.raises(SanitizerError) as excinfo:
            recursive_greens_function(0.3, diag, coup, sl, sr)
        assert excinfo.value.quantity == "H_22"
        assert excinfo.value.energy_ev == pytest.approx(0.3)

    def test_rgf_catches_injected_nan_at_energy(self, sanitizer_on):
        # A NaN smuggled into a Hamiltonian block propagates into the
        # Green's function; the report must name the energy point.
        diag, coup, sl, sr = _chain()
        diag[1][0, 0] = complex(np.nan, 0.0)  # hermitian, but not finite
        with pytest.raises(SanitizerError) as excinfo:
            recursive_greens_function(0.125, diag, coup, sl, sr)
        assert "E=0.125 eV" in str(excinfo.value)
        assert excinfo.value.operator == "recursive_greens_function"

    def test_dense_gf_catches_nonhermitian(self, sanitizer_on):
        h = np.array([[0.0, 0.4], [0.1, 0.0]])
        with pytest.raises(SanitizerError, match="hermiticity"):
            dense_retarded_gf(0.0, h)

    def test_scf_catches_nan_charge(self, sanitizer_on):
        calls = {"n": 0}

        def solve_charge(u):
            calls["n"] += 1
            out = u.copy()
            if calls["n"] >= 2:
                out[0] = np.nan
            return out

        with pytest.raises(SanitizerError, match="charge density"):
            self_consistent_loop(solve_charge, lambda q: 0.9 * q,
                                 np.ones(4),
                                 SCFOptions(tolerance_ev=1e-12,
                                            max_iterations=10,
                                            raise_on_failure=False))

    def test_hooks_are_inert_when_disabled(self, monkeypatch):
        monkeypatch.setattr(sanitize, "ACTIVE", False)
        diag, coup, sl, sr = _chain()
        diag[2][0, 1] += 0.5  # would trip hermiticity if active
        result = recursive_greens_function(0.3, diag, coup, sl, sr)
        assert result.transmission is not None


class TestActivation:
    def test_enable_disable_sync_environment(self, monkeypatch):
        monkeypatch.delenv(sanitize.SANITIZE_ENV, raising=False)
        monkeypatch.setattr(sanitize, "ACTIVE", False)
        sanitize.enable()
        assert sanitize.ACTIVE and sanitize.active()
        import os
        assert os.environ[sanitize.SANITIZE_ENV] == "1"
        sanitize.disable()
        assert not sanitize.ACTIVE
        assert sanitize.SANITIZE_ENV not in os.environ

    def test_env_parsing(self):
        assert sanitize._env_active.__call__ is not None
        for raw, expected in [("1", True), ("true", True), ("on", True),
                              ("0", False), ("", False), ("off", False),
                              ("no", False), ("false", False)]:
            assert (raw.strip().lower() not in sanitize._FALSEY) == expected
