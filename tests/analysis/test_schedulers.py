"""Tests of the RPA9xx scheduler-seam family."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import run_analysis


_RUNTIME_STUBS = {
    "src/repro/runtime/parallel.py": """\
        def parallel_map(fn, items, workers=None):
            return [fn(item) for item in items]
    """,
    "src/repro/runtime/scheduler.py": """\
        from repro.runtime.parallel import parallel_map

        class Scheduler:
            def run(self, fn, tasks):
                raise NotImplementedError

        class LocalScheduler(Scheduler):
            def run(self, fn, tasks):
                return parallel_map(fn, tasks)
    """,
    "src/repro/runtime/__init__.py": """\
        from repro.runtime.parallel import parallel_map
        from repro.runtime.scheduler import LocalScheduler, Scheduler
    """,
}


def _run(tmp_path, files: dict[str, str]):
    paths = []
    for rel, source in {**_RUNTIME_STUBS, **files}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_analysis(paths, select=["RPA9"])


class TestRPA901:
    def test_direct_call_in_exploration_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/exploration/sweep.py": """\
            from repro.runtime import parallel_map

            def sweep(tasks):
                return parallel_map(_row, tasks)

            def _row(task):
                return task
        """})
        assert [f.code for f in report.findings] == ["RPA901"]
        assert "Scheduler" in report.findings[0].message

    def test_direct_call_in_variability_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/variability/mc.py": """\
            from repro.runtime.parallel import parallel_map

            def sample(tasks):
                return parallel_map(_one, tasks)

            def _one(task):
                return task
        """})
        assert [f.code for f in report.findings] == ["RPA901"]

    def test_scheduler_dispatch_is_quiet(self, tmp_path):
        report = _run(tmp_path, {"src/repro/exploration/sweep.py": """\
            from repro.runtime import LocalScheduler

            def sweep(tasks, scheduler=None):
                sched = scheduler or LocalScheduler()
                return sched.run(_row, tasks)

            def _row(task):
                return task
        """})
        assert not report.findings

    def test_other_layers_are_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/device/tables.py": """\
            from repro.runtime import parallel_map

            def build(tasks):
                return parallel_map(_one, tasks)

            def _one(task):
                return task
        """})
        assert not report.findings

    def test_runtime_layer_is_exempt(self, tmp_path):
        # The seam's own dispatch lives in repro.runtime and is not
        # subject to the rule (the live tree also carries a noqa).
        report = _run(tmp_path, {})
        assert not report.findings

    def test_noqa_escape(self, tmp_path):
        report = _run(tmp_path, {"src/repro/exploration/sweep.py": """\
            from repro.runtime import parallel_map

            def sweep(tasks):
                return parallel_map(_row, tasks)  # repro: noqa[RPA901]

            def _row(task):
                return task
        """})
        assert not report.findings

    def test_direct_call_in_characterize_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/characterize/runner.py": """\
            from repro.runtime import parallel_map

            def measure(ids):
                return parallel_map(_one, ids)

            def _one(eid):
                return eid
        """})
        assert [f.code for f in report.findings] == ["RPA901"]

    def test_live_code_listing(self):
        from repro.analysis.checkers import all_codes

        codes = all_codes()
        assert "RPA901" in codes
        assert "parallel_map" in codes["RPA901"]


class TestRPA902:
    def test_keyboard_interrupt_catch_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/swallow.py": """\
            from repro.runtime.scheduler import Scheduler

            class SwallowScheduler(Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except KeyboardInterrupt:
                        return []
        """})
        assert [f.code for f in report.findings] == ["RPA902"]
        assert "KeyboardInterrupt" in report.findings[0].message

    def test_base_exception_in_tuple_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/swallow.py": """\
            from repro.runtime.scheduler import Scheduler

            class SwallowScheduler(Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except (ValueError, BaseException):
                        return []
        """})
        assert [f.code for f in report.findings] == ["RPA902"]

    def test_bare_except_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/swallow.py": """\
            from repro.runtime.scheduler import Scheduler

            class SwallowScheduler(Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except:
                        return []
        """})
        assert [f.code for f in report.findings] == ["RPA902"]
        assert "bare except" in report.findings[0].message

    def test_order_destroying_return_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/unsorted.py": """\
            from repro.runtime.scheduler import Scheduler

            class SortingScheduler(Scheduler):
                def run(self, fn, tasks):
                    return sorted(fn(t) for t in tasks)
        """})
        assert [f.code for f in report.findings] == ["RPA902"]
        assert "sorted" in report.findings[0].message

    def test_set_return_fires(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/unsorted.py": """\
            from repro.runtime.scheduler import Scheduler

            class DedupScheduler(Scheduler):
                def run(self, fn, tasks):
                    return set(fn(t) for t in tasks)
        """})
        assert [f.code for f in report.findings] == ["RPA902"]

    def test_value_error_catch_is_quiet(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/careful.py": """\
            from repro.runtime.scheduler import Scheduler

            class CarefulScheduler(Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except ValueError:
                        raise
        """})
        assert not report.findings

    def test_dotted_base_is_recognised(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/swallow.py": """\
            import repro.runtime.scheduler as scheduler

            class SwallowScheduler(scheduler.Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except BaseException:
                        return []
        """})
        assert [f.code for f in report.findings] == ["RPA902"]

    def test_non_scheduler_class_is_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/other.py": """\
            class Job:
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except BaseException:
                        return []
        """})
        assert not report.findings

    def test_non_run_method_is_exempt(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/other.py": """\
            from repro.runtime.scheduler import Scheduler

            class PatientScheduler(Scheduler):
                def close(self):
                    try:
                        pass
                    except BaseException:
                        pass

                def run(self, fn, tasks):
                    return [fn(t) for t in tasks]
        """})
        assert not report.findings

    def test_noqa_escape(self, tmp_path):
        report = _run(tmp_path, {"src/repro/runtime/swallow.py": """\
            from repro.runtime.scheduler import Scheduler

            class SwallowScheduler(Scheduler):
                def run(self, fn, tasks):
                    try:
                        return [fn(t) for t in tasks]
                    except KeyboardInterrupt:  # repro: noqa[RPA902]
                        return []
        """})
        assert not report.findings

    def test_live_code_listing(self):
        from repro.analysis.checkers import all_codes

        codes = all_codes()
        assert "RPA902" in codes
        assert "order" in codes["RPA902"]
