"""Tests of the analysis engine: discovery, suppression, reporting."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    load_module,
    module_name_for,
    run_analysis,
    scan_noqa,
)
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestModuleModel:
    def test_module_name_inside_repro_tree(self, tmp_path):
        path = _write(tmp_path, "src/repro/negf/example.py", "x = 1\n")
        module, err = load_module(path)
        assert err is None
        assert module.module_name == "repro.negf.example"
        assert module.package == "negf"

    def test_root_facade_package(self, tmp_path):
        path = _write(tmp_path, "src/repro/__init__.py", "x = 1\n")
        module, _ = load_module(path)
        assert module.module_name == "repro"
        assert module.package == "__init__"

    def test_outside_repro_has_no_module_name(self, tmp_path):
        path = _write(tmp_path, "scripts/tool.py", "x = 1\n")
        module, _ = load_module(path)
        assert module.module_name is None
        assert module.package is None

    def test_module_name_for_init(self, tmp_path):
        assert module_name_for(
            tmp_path / "src/repro/negf/__init__.py") == "repro.negf"

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        path = _write(tmp_path, "src/repro/bad.py", "def broken(:\n")
        module, err = load_module(path)
        assert module is None
        assert err is not None
        assert err.code == PARSE_ERROR_CODE


class TestNoqa:
    def test_blanket_and_coded_suppressions(self):
        noqa = scan_noqa([
            "x = 2.7  # repro: noqa",
            "y = 1",
            "z = 3.9  # repro: noqa[RPA201]",
            "w = 0  # repro: noqa[RPA201, RPA103]",
        ])
        assert noqa[1] == frozenset()
        assert 2 not in noqa
        assert noqa[3] == frozenset({"RPA201"})
        assert noqa[4] == frozenset({"RPA201", "RPA103"})

    def test_noqa_suppresses_finding_on_its_line(self, tmp_path):
        clean = _write(tmp_path, "src/repro/device/example.py", """\
            T_GHZ = 2.7  # repro: noqa[RPA201]
        """)
        report = run_analysis([clean])
        assert report.clean
        assert report.n_noqa_suppressed == 1

    def test_noqa_with_wrong_code_does_not_suppress(self, tmp_path):
        path = _write(tmp_path, "src/repro/device/example.py", """\
            T_GHZ = 2.7  # repro: noqa[RPA103]
        """)
        report = run_analysis([path])
        assert [f.code for f in report.findings] == ["RPA201"]


class TestBaseline:
    def test_baseline_roundtrip_suppresses(self, tmp_path):
        src = _write(tmp_path, "src/repro/device/example.py", """\
            HOPPING = 2.7
        """)
        report = run_analysis([src])
        assert len(report.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.findings)
        baseline = load_baseline(baseline_file)

        again = run_analysis([src], baseline=baseline)
        assert again.clean
        assert again.n_baseline_suppressed == 1

    def test_baseline_budget_is_consumed_per_occurrence(self, tmp_path):
        one = _write(tmp_path, "src/repro/device/example.py", """\
            A = 2.7
        """)
        report_one = run_analysis([one])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report_one.findings)

        # A second identical occurrence exceeds the accepted budget of 1.
        _write(tmp_path, "src/repro/device/example.py", """\
            A = 2.7
            B = 2.7
        """)
        report_two = run_analysis([one],
                                  baseline=load_baseline(baseline_file))
        assert len(report_two.findings) == 1
        assert report_two.n_baseline_suppressed == 1


class TestReporters:
    def _report(self, tmp_path):
        path = _write(tmp_path, "src/repro/device/example.py", """\
            A = 2.7
        """)
        return run_analysis([path])

    def test_text_report_format(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "RPA201" in text
        assert text.endswith("1 finding(s) in 1 file(s)")

    def test_json_report_format(self, tmp_path):
        document = json.loads(render_json(self._report(tmp_path)))
        assert document["summary"]["findings"] == 1
        assert document["findings"][0]["code"] == "RPA201"

    def test_finding_render_is_clickable(self):
        f = Finding(path="src/repro/x.py", line=3, col=7, code="RPA101",
                    message="boom")
        assert f.render() == "src/repro/x.py:3:7: RPA101 boom"
