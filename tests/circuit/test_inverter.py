"""Tests for inverter building and characterization."""

import numpy as np
import pytest

from repro.circuit.inverter import (
    CircuitParameters,
    build_inverter_chain,
    characterize_inverter,
    estimate_inverter_delay,
    estimate_inverter_energy,
    inverter_static_power_w,
    inverter_vtc,
    switched_gate_charge_c,
)


class TestCircuitParameters:
    def test_paper_defaults(self):
        p = CircuitParameters()
        assert p.contact_resistance_ohm == 10e3
        assert p.contact_width_nm == 40.0
        assert p.n_ribbons == 4
        assert p.fanout == 4

    def test_parasitic_capacitance(self):
        """0.05 aF/nm x 40 nm = 2 aF."""
        p = CircuitParameters()
        assert p.c_parasitic_f == pytest.approx(2e-18)


class TestBuild:
    def test_node_count(self, nominal_pair, params):
        nt, pt = nominal_pair
        c = build_inverter_chain(nt, pt, 0.4, params)
        # in + out + vdd + 4 DUT internals + 4 load outputs.
        assert c.n_nodes == 3 + 4 + params.fanout
        c.validate()

    def test_load_tables_override(self, nominal_pair, params, tech):
        nt, pt = nominal_pair
        other = tech.inverter_tables(0.2)
        c = build_inverter_chain(nt, pt, 0.4, params, load_tables=other)
        c.validate()


class TestVTC:
    def test_full_swing(self, nominal_pair, params):
        nt, pt = nominal_pair
        vin, vout = inverter_vtc(nt, pt, 0.4, params, n_points=21)
        assert vout[0] > 0.35
        assert vout[-1] < 0.05

    def test_transition_monotone(self, nominal_pair, params):
        """Strictly decreasing through the transition region.  (Near the
        rails the ambipolar leakage lets the output drift up by ~1 mV as
        the off-device moves toward its minimum-leakage point - a real
        GNRFET feature, so only large reversals are forbidden there.)"""
        nt, pt = nominal_pair
        vin, vout = inverter_vtc(nt, pt, 0.4, params, n_points=31)
        mid = (vin > 0.08) & (vin < 0.32)
        assert np.all(np.diff(vout[mid]) < 0.0)
        assert np.all(np.diff(vout) < 3e-3)


class TestStaticPower:
    def test_positive_and_small(self, nominal_pair, params):
        nt, pt = nominal_pair
        p = inverter_static_power_w(nt, pt, 0.4, params)
        assert 1e-9 < p < 1e-6

    def test_grows_with_vdd(self, nominal_pair, params):
        nt, pt = nominal_pair
        assert (inverter_static_power_w(nt, pt, 0.5, params)
                > inverter_static_power_w(nt, pt, 0.3, params))


class TestEstimators:
    def test_gate_charge_positive(self, nominal_pair, params):
        nt, pt = nominal_pair
        q = switched_gate_charge_c(nt, pt, 0.4, params)
        assert q > 0.0
        # Scale: tens of aF * 0.4 V => ~1e-17..1e-16 C.
        assert 1e-19 < q < 1e-15

    def test_delay_estimate_positive(self, nominal_pair, params):
        nt, pt = nominal_pair
        d = estimate_inverter_delay(nt, pt, 0.4, params)
        assert 0.1e-12 < d < 100e-12

    def test_delay_falls_with_vdd(self, nominal_pair, params):
        nt, pt = nominal_pair
        assert (estimate_inverter_delay(nt, pt, 0.5, params)
                < estimate_inverter_delay(nt, pt, 0.3, params))

    def test_energy_grows_with_vdd(self, nominal_pair, params):
        nt, pt = nominal_pair
        assert (estimate_inverter_energy(nt, pt, 0.5, params)
                > estimate_inverter_energy(nt, pt, 0.3, params))


class TestFullCharacterization:
    @pytest.fixture(scope="class")
    def metrics(self, nominal_pair, params):
        nt, pt = nominal_pair
        return characterize_inverter(nt, pt, 0.4, params)

    def test_paper_nominal_delay_scale(self, metrics):
        """Paper nominal FO4 delay is 7.54 ps; require the same scale."""
        assert 3e-12 < metrics.delay_s < 15e-12

    def test_paper_nominal_power_scales(self, metrics):
        """Paper: P_stat 0.095 uW, P_dyn 0.706 uW."""
        assert 0.02e-6 < metrics.static_power_w < 0.4e-6
        assert 0.15e-6 < metrics.dynamic_power_w < 2.5e-6

    def test_rise_fall_symmetric(self, metrics):
        """Symmetric ambipolar n/p devices give closely matched edges."""
        assert metrics.t_plh_s == pytest.approx(metrics.t_phl_s, rel=0.5)

    def test_estimate_within_factor_of_transient(self, metrics,
                                                 nominal_pair, params):
        nt, pt = nominal_pair
        est = estimate_inverter_delay(nt, pt, 0.4, params)
        assert 0.2 < est / metrics.delay_s < 1.2
