"""Tests for the DC operating-point solver."""

import numpy as np
import pytest

from repro.circuit.dc import solve_dc
from repro.circuit.elements import CurrentSource, Resistor, TableFET
from repro.circuit.netlist import Circuit, GROUND
from repro.device.tables import DeviceTable


def _resistor_divider():
    c = Circuit()
    top = c.node("top")
    mid = c.node("mid")
    c.fix(top, 1.0)
    c.add(Resistor(top, mid, 1e3))
    c.add(Resistor(mid, GROUND, 3e3))
    return c, mid, top


class TestLinearCircuits:
    def test_resistor_divider(self):
        c, mid, _ = _resistor_divider()
        result = solve_dc(c)
        assert result.voltage(mid) == pytest.approx(0.75, abs=1e-9)

    def test_source_current(self):
        c, _, top = _resistor_divider()
        result = solve_dc(c)
        assert result.source_current(top) == pytest.approx(
            1.0 / 4e3, rel=1e-9)

    def test_current_source_into_resistor(self):
        c = Circuit()
        n = c.node("n")
        c.add(Resistor(n, GROUND, 2e3))
        c.add(CurrentSource(GROUND, n, 1e-3))
        # The source injects into ground-node bookkeeping; KCL at n:
        # stamp adds -1mA at n, so n = +2 V through the resistor.
        result = solve_dc(c)
        assert abs(result.voltage(n)) == pytest.approx(2.0, rel=1e-6)

    def test_ladder_network(self):
        c = Circuit()
        prev = c.node("in")
        c.fix(prev, 2.0)
        for i in range(5):
            nxt = c.node(f"n{i}")
            c.add(Resistor(prev, nxt, 1e3))
            c.add(Resistor(nxt, GROUND, 1e3))
            prev = nxt
        result = solve_dc(c)
        # Each stage divides; voltages strictly decreasing and positive.
        vs = [result.voltage(f"n{i}") for i in range(5)]
        assert all(a > b > 0 for a, b in zip(vs, vs[1:]))

    def test_v0_shape_checked(self):
        c, _, _ = _resistor_divider()
        with pytest.raises(ValueError):
            solve_dc(c, v0=np.zeros(5))


class TestNonlinearCircuits:
    def test_inverter_rails(self, nominal_pair, params):
        """DC inverter output sits near the rails for rail inputs."""
        from repro.circuit.inverter import add_inverter

        nt, pt = nominal_pair
        c = Circuit()
        vin = c.node("in")
        vout = c.node("out")
        vdd = c.node("vdd")
        c.fix(vdd, 0.4)
        c.fix(vin, 0.0)
        add_inverter(c, "inv", vin, vout, vdd, nt, pt, params)
        r0 = solve_dc(c)
        assert r0.voltage(vout) > 0.35
        c.fixed[vin] = 0.4
        r1 = solve_dc(c, v0=r0.voltages)
        assert r1.voltage(vout) < 0.05

    def test_latch_bistability(self, nominal_pair, params):
        """Seeding the two basins yields the two stable states."""
        from repro.circuit.latch import build_latch

        nt, pt = nominal_pair
        c = build_latch(nt, pt, 0.4, params)
        q, qb, vdd = c.node("q"), c.node("qb"), c.node("vdd")
        v0 = np.full(c.n_nodes, 0.2)
        v0[vdd] = 0.4
        v0[q], v0[qb] = 0.4, 0.0
        up = solve_dc(c, v0=v0)
        v0[q], v0[qb] = 0.0, 0.4
        down = solve_dc(c, v0=v0)
        assert up.voltage(q) > 0.3 and up.voltage(qb) < 0.1
        assert down.voltage(q) < 0.1 and down.voltage(qb) > 0.3

    def test_kcl_residual_at_solution(self, nominal_pair, params):
        from repro.circuit.inverter import add_inverter

        nt, pt = nominal_pair
        c = Circuit()
        vin, vout, vdd = c.node("in"), c.node("out"), c.node("vdd")
        c.fix(vdd, 0.4)
        c.fix(vin, 0.2)
        add_inverter(c, "inv", vin, vout, vdd, nt, pt, params)
        result = solve_dc(c)
        f = np.zeros(c.n_nodes)
        for el in c.elements:
            el.stamp_static(result.voltages, f, None)
        assert np.max(np.abs(f[c.free_nodes()])) < 1e-12
