"""Tests for VTC computation."""

import numpy as np
import pytest

from repro.circuit.elements import Resistor
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.vtc import compute_vtc


class TestComputeVTC:
    def test_linear_divider(self):
        c = Circuit()
        vin = c.node("in")
        out = c.node("out")
        c.fix(vin, 0.0)
        c.add(Resistor(vin, out, 1e3))
        c.add(Resistor(out, GROUND, 1e3))
        grid = np.linspace(0, 1, 11)
        vout = compute_vtc(c, vin, out, grid)
        assert np.allclose(vout, grid / 2, atol=1e-9)

    def test_requires_fixed_input(self):
        c = Circuit()
        vin = c.node("in")
        out = c.node("out")
        c.add(Resistor(vin, out, 1e3))
        c.add(Resistor(out, GROUND, 1e3))
        with pytest.raises(ValueError):
            compute_vtc(c, vin, out, np.linspace(0, 1, 5))

    def test_accepts_node_names(self, nominal_pair, params):
        from repro.circuit.inverter import add_inverter

        nt, pt = nominal_pair
        c = Circuit()
        c.fix(c.node("vdd"), 0.4)
        c.fix(c.node("in"), 0.0)
        add_inverter(c, "inv", c.node("in"), c.node("out"),
                     c.node("vdd"), nt, pt, params)
        vout = compute_vtc(c, "in", "out", np.linspace(0, 0.4, 9))
        assert vout[0] > vout[-1]
