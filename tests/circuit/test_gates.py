"""Tests for NAND2/NOR2 gate builders and characterization."""

import numpy as np
import pytest

from repro.circuit.gates import (
    build_nand2,
    build_nor2,
    characterize_gate,
    gate_static_power_w,
    gate_truth_table,
)


class TestTruthTables:
    def test_nand2_logic(self, nominal_pair, params):
        nt, pt = nominal_pair
        circuit = build_nand2(nt, pt, 0.4, params)
        levels = gate_truth_table(circuit, 0.4)
        assert levels[(False, False)] > 0.3
        assert levels[(False, True)] > 0.3
        assert levels[(True, False)] > 0.3
        assert levels[(True, True)] < 0.1

    def test_nor2_logic(self, nominal_pair, params):
        nt, pt = nominal_pair
        circuit = build_nor2(nt, pt, 0.4, params)
        levels = gate_truth_table(circuit, 0.4)
        assert levels[(False, False)] > 0.3
        assert levels[(False, True)] < 0.1
        assert levels[(True, False)] < 0.1
        assert levels[(True, True)] < 0.1

    def test_validate(self, nominal_pair, params):
        nt, pt = nominal_pair
        build_nand2(nt, pt, 0.4, params).validate()
        build_nor2(nt, pt, 0.4, params).validate()


class TestStaticPower:
    def test_positive(self, nominal_pair, params):
        nt, pt = nominal_pair
        circuit = build_nand2(nt, pt, 0.4, params)
        assert gate_static_power_w(circuit, 0.4) > 0.0

    def test_gate_leaks_same_order_as_inverter(self, nominal_pair, params):
        from repro.circuit.inverter import inverter_static_power_w

        nt, pt = nominal_pair
        p_inv = inverter_static_power_w(nt, pt, 0.4, params)
        p_nand = gate_static_power_w(build_nand2(nt, pt, 0.4, params), 0.4)
        assert 0.3 * p_inv < p_nand < 6.0 * p_inv


class TestCharacterization:
    @pytest.fixture(scope="class")
    def nand_metrics(self, nominal_pair, params):
        nt, pt = nominal_pair
        return characterize_gate("nand2", nt, pt, 0.4, params)

    def test_delay_scale(self, nand_metrics):
        """NAND2 with FO4 load: same few-ps class as the inverter,
        slower than it (series stack)."""
        assert 3e-12 < nand_metrics.worst_delay_s < 60e-12

    def test_both_pins_measured(self, nand_metrics):
        assert set(nand_metrics.delays_s) == {"a", "b"}
        assert all(np.isfinite(d) for d in nand_metrics.delays_s.values())

    def test_nand_slower_than_inverter(self, nand_metrics, nominal_pair,
                                       params):
        from repro.circuit.inverter import characterize_inverter

        nt, pt = nominal_pair
        inv = characterize_inverter(nt, pt, 0.4, params)
        assert nand_metrics.worst_delay_s > 0.9 * inv.delay_s

    def test_unknown_kind(self, nominal_pair, params):
        nt, pt = nominal_pair
        with pytest.raises(ValueError):
            characterize_gate("xor2", nt, pt, 0.4, params)
