"""Tests for circuit elements: stamps, polarity mirroring, derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.elements import Capacitor, CurrentSource, Resistor, TableFET
from repro.circuit.netlist import GROUND
from repro.device.tables import DeviceTable


def _toy_table():
    vg = np.linspace(-1.0, 1.5, 26)
    vd = np.linspace(0.0, 1.0, 11)
    gg, dd = np.meshgrid(vg, vd, indexing="ij")
    current = 1e-6 * np.clip(gg, 0, None) * dd  # crude FET-like
    charge = 1e-18 * (gg + 0.5 * dd)
    return DeviceTable(vg=vg, vd=vd, current_a=current, charge_c=charge)


class TestResistor:
    def test_stamp_current_and_jacobian(self):
        r = Resistor(0, 1, 2e3)
        v = np.array([1.0, 0.0])
        f = np.zeros(2)
        jac = np.zeros((2, 2))
        r.stamp_static(v, f, jac)
        assert f[0] == pytest.approx(5e-4)
        assert f[1] == pytest.approx(-5e-4)
        assert jac[0, 0] == pytest.approx(5e-4 / 1.0)

    def test_ground_terminal(self):
        r = Resistor(0, GROUND, 1e3)
        v = np.array([2.0])
        f = np.zeros(1)
        r.stamp_static(v, f, None)
        assert f[0] == pytest.approx(2e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor(0, 1, 0.0)


class TestCapacitor:
    def test_no_static_current(self):
        c = Capacitor(0, 1, 1e-15)
        f = np.zeros(2)
        c.stamp_static(np.array([1.0, 0.0]), f, None)
        assert np.all(f == 0.0)

    def test_cap_stamp(self):
        c = Capacitor(0, 1, 1e-15)
        stamps = c.capacitor_stamps(np.zeros(2))
        assert stamps == [(0, 1, 1e-15)]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Capacitor(0, 1, -1e-15)


class TestCurrentSource:
    def test_injection(self):
        s = CurrentSource(0, 1, 2e-6)
        f = np.zeros(2)
        s.stamp_static(np.zeros(2), f, None)
        assert f[0] == pytest.approx(2e-6)
        assert f[1] == pytest.approx(-2e-6)


class TestTableFETNType:
    def test_current_direction(self):
        t = _toy_table()
        fet = TableFET(drain=0, gate=1, source=GROUND, table=t)
        v = np.array([0.5, 1.0])  # vds=0.5, vgs=1.0
        f = np.zeros(2)
        fet.stamp_static(v, f, None)
        expected = t.current(1.0, 0.5)
        assert f[0] == pytest.approx(expected)   # out of drain node
        assert expected > 0.0

    def test_jacobian_matches_finite_difference(self):
        t = _toy_table()
        fet = TableFET(0, 1, 2, t)
        v = np.array([0.62, 0.81, 0.13])
        f = np.zeros(3)
        jac = np.zeros((3, 3))
        fet.stamp_static(v, f, jac)
        h = 1e-7
        for col in range(3):
            vp = v.copy(); vp[col] += h
            vm = v.copy(); vm[col] -= h
            fp = np.zeros(3); fm = np.zeros(3)
            fet.stamp_static(vp, fp, None)
            fet.stamp_static(vm, fm, None)
            fd = (fp - fm) / (2 * h)
            assert np.allclose(jac[:, col], fd, atol=1e-9)

    def test_kcl_consistency(self):
        """Drain and source currents are equal and opposite; gate draws
        no static current."""
        t = _toy_table()
        fet = TableFET(0, 1, 2, t)
        f = np.zeros(3)
        fet.stamp_static(np.array([0.7, 0.9, 0.1]), f, None)
        assert f[0] == pytest.approx(-f[2])
        assert f[1] == 0.0


class TestTableFETPType:
    def test_mirror_relation(self):
        """I_p(vgs, vds) = -I_n(-vgs, -vds)."""
        t = _toy_table()
        nfet = TableFET(0, 1, 2, t, polarity=+1)
        pfet = TableFET(0, 1, 2, t, polarity=-1)
        v_p = np.array([-0.4, -0.8, 0.0])  # p-device biased negatively
        assert pfet.current(v_p) == pytest.approx(
            -nfet.current(-v_p), abs=1e-15)

    def test_p_jacobian_finite_difference(self):
        t = _toy_table()
        pfet = TableFET(0, 1, 2, t, polarity=-1)
        v = np.array([0.1, 0.0, 0.8])  # source high: pFET conducting
        jac = np.zeros((3, 3))
        f = np.zeros(3)
        pfet.stamp_static(v, f, jac)
        h = 1e-7
        for col in range(3):
            vp = v.copy(); vp[col] += h
            vm = v.copy(); vm[col] -= h
            fp = np.zeros(3); fm = np.zeros(3)
            pfet.stamp_static(vp, fp, None)
            pfet.stamp_static(vm, fm, None)
            assert np.allclose(jac[:, col], (fp - fm) / (2 * h), atol=1e-9)

    def test_polarity_validation(self):
        with pytest.raises(ValueError):
            TableFET(0, 1, 2, _toy_table(), polarity=0)


class TestTableFETCapacitors:
    def test_parasitics_added(self):
        t = _toy_table()
        fet = TableFET(0, 1, 2, t, c_par_gs_f=1e-18, c_par_gd_f=2e-18)
        stamps = fet.capacitor_stamps(np.zeros(3))
        (g1, s1, cgs), (g2, d2, cgd) = stamps
        assert (g1, s1) == (1, 2)
        assert (g2, d2) == (1, 0)
        assert cgs >= 1e-18
        assert cgd >= 2e-18

    @given(st.floats(min_value=-0.5, max_value=1.0),
           st.floats(min_value=-0.5, max_value=1.0))
    @settings(max_examples=25)
    def test_capacitances_always_nonnegative(self, vd, vg):
        fet = TableFET(0, 1, GROUND, _toy_table())
        stamps = fet.capacitor_stamps(np.array([vd, vg]))
        for _, _, c in stamps:
            assert c >= 0.0
