"""Tests for the ring oscillator (estimate path + one transient)."""

import numpy as np
import pytest

from repro.circuit.ring_oscillator import (
    build_ring_oscillator,
    estimate_ring_oscillator,
    simulate_ring_oscillator,
)


class TestBuild:
    def test_structure(self, nominal_pair, params):
        nt, pt = nominal_pair
        c = build_ring_oscillator(nt, pt, 0.4, n_stages=5, params=params)
        # vdd + 5 stage nodes + 5 stages * (4 internals + 3 replica
        # outputs) = 1 + 5 + 35.
        assert c.n_nodes == 1 + 5 + 5 * (4 + (params.fanout - 1))
        c.validate()

    def test_rejects_even_ring(self, nominal_pair, params):
        nt, pt = nominal_pair
        with pytest.raises(ValueError):
            build_ring_oscillator(nt, pt, 0.4, n_stages=4, params=params)

    def test_per_stage_tables(self, nominal_pair, params):
        nt, pt = nominal_pair
        tables = [(nt, pt)] * 5
        c = build_ring_oscillator(nt, pt, 0.4, n_stages=5, params=params,
                                  per_stage_tables=tables)
        c.validate()


class TestEstimate:
    def test_frequency_scale(self, nominal_pair, params):
        """Paper point B: ~3.3 GHz for the nominal 15-stage FO4 ring."""
        nt, pt = nominal_pair
        m = estimate_ring_oscillator(nt, pt, 0.4, 15, params)
        assert 1.5e9 < m.frequency_hz < 7e9

    def test_power_components_consistent(self, nominal_pair, params):
        nt, pt = nominal_pair
        m = estimate_ring_oscillator(nt, pt, 0.4, 15, params)
        assert m.total_power_w == pytest.approx(
            m.static_power_w + m.dynamic_power_w)

    def test_edp_definition(self, nominal_pair, params):
        nt, pt = nominal_pair
        m = estimate_ring_oscillator(nt, pt, 0.4, 15, params)
        assert m.edp_j_s == pytest.approx(
            m.total_power_w / m.frequency_hz * m.stage_delay_s)

    def test_fewer_stages_faster(self, nominal_pair, params):
        nt, pt = nominal_pair
        f15 = estimate_ring_oscillator(nt, pt, 0.4, 15, params).frequency_hz
        f7 = estimate_ring_oscillator(nt, pt, 0.4, 7, params).frequency_hz
        assert f7 == pytest.approx(f15 * 15 / 7, rel=1e-6)

    def test_frequency_rises_with_vdd(self, nominal_pair, params):
        nt, pt = nominal_pair
        f_lo = estimate_ring_oscillator(nt, pt, 0.3, 15, params).frequency_hz
        f_hi = estimate_ring_oscillator(nt, pt, 0.5, 15, params).frequency_hz
        assert f_hi > f_lo


@pytest.mark.slow
class TestTransient:
    def test_small_ring_oscillates_and_matches_estimate(
            self, nominal_pair, params):
        """A 5-stage transient ring must oscillate with a frequency
        within ~40% of the calibrated quasi-static estimate."""
        nt, pt = nominal_pair
        sim = simulate_ring_oscillator(nt, pt, 0.4, 5, params,
                                       n_periods=4.0)
        est = estimate_ring_oscillator(nt, pt, 0.4, 5, params)
        assert sim.frequency_hz > 0.0
        assert est.frequency_hz == pytest.approx(sim.frequency_hz,
                                                 rel=0.4)
        assert sim.total_power_w > sim.static_power_w
