"""Tests for netlist construction and validation."""

import pytest

from repro.circuit.elements import Resistor
from repro.circuit.netlist import Circuit, GROUND
from repro.errors import CircuitError


class TestNodes:
    def test_ground_aliases(self):
        c = Circuit()
        assert c.node("0") == GROUND
        assert c.node("gnd") == GROUND
        assert c.node("ground") == GROUND

    def test_node_creation_idempotent(self):
        c = Circuit()
        a = c.node("a")
        assert c.node("a") == a
        assert c.n_nodes == 1

    def test_node_name_roundtrip(self):
        c = Circuit()
        idx = c.node("out")
        assert c.node_name(idx) == "out"
        assert c.node_name(GROUND) == "gnd"


class TestFixedNodes:
    def test_fix_by_name(self):
        c = Circuit()
        c.node("vdd")
        c.fix("vdd", 0.8)
        assert c.fixed_voltages()[c.node("vdd")] == 0.8

    def test_fix_waveform(self):
        c = Circuit()
        c.fix(c.node("in"), lambda t: 2.0 * t)
        assert c.fixed_voltages(0.5)[c.node("in")] == 1.0

    def test_cannot_fix_ground(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.fix("0", 1.0)

    def test_free_nodes_excludes_fixed(self):
        c = Circuit()
        a, b = c.node("a"), c.node("b")
        c.fix(a, 1.0)
        assert list(c.free_nodes()) == [b]


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().validate()

    def test_dangling_node_rejected(self):
        c = Circuit()
        a = c.node("a")
        c.node("floating")
        c.add(Resistor(a, GROUND, 1e3))
        with pytest.raises(CircuitError):
            c.validate()

    def test_dangling_fixed_node_allowed(self):
        """A fixed node with no elements is a harmless source stub."""
        c = Circuit()
        a = c.node("a")
        c.add(Resistor(a, GROUND, 1e3))
        c.fix(c.node("unused_rail"), 1.0)
        c.validate()

    def test_valid_circuit_passes(self):
        c = Circuit()
        c.add(Resistor(c.node("a"), GROUND, 1e3))
        c.validate()
