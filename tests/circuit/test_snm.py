"""Tests for butterfly/SNM extraction on synthetic and real VTCs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.snm import butterfly_curves, static_noise_margin


def _step_vtc(vin, vdd, v_switch, steepness=200.0):
    """Smooth inverter-like VTC with controllable sharpness."""
    arg = np.clip(steepness * (vin - v_switch), -500.0, 500.0)
    return vdd / (1.0 + np.exp(arg))


class TestIdealCurves:
    def test_ideal_step_snm_approaches_half_vdd(self):
        vdd = 1.0
        vin = np.linspace(0, vdd, 801)
        vtc = _step_vtc(vin, vdd, vdd / 2, steepness=5000.0)
        snm = static_noise_margin(butterfly_curves(vin, vtc))
        assert snm == pytest.approx(vdd / 2, abs=0.02)

    def test_unity_gain_curve_zero_snm(self):
        """VTC = vdd - vin has coincident butterfly curves: SNM = 0."""
        vin = np.linspace(0, 1, 101)
        snm = static_noise_margin(butterfly_curves(vin, 1.0 - vin))
        assert snm == pytest.approx(0.0, abs=1e-6)

    def test_low_gain_small_snm(self):
        vin = np.linspace(0, 1, 401)
        sharp = static_noise_margin(butterfly_curves(
            vin, _step_vtc(vin, 1.0, 0.5, 50.0)))
        shallow = static_noise_margin(butterfly_curves(
            vin, _step_vtc(vin, 1.0, 0.5, 6.0)))
        assert sharp > shallow

    def test_asymmetric_switch_point_reduces_snm(self):
        vin = np.linspace(0, 1, 401)
        centered = static_noise_margin(butterfly_curves(
            vin, _step_vtc(vin, 1.0, 0.5, 100.0)))
        skewed = static_noise_margin(butterfly_curves(
            vin, _step_vtc(vin, 1.0, 0.15, 100.0)))
        assert skewed < centered

    def test_collapsed_eye_zero(self):
        """A 'VTC' that never crosses the mirrored curve's other lobe
        (output stuck high) collapses one eye."""
        vin = np.linspace(0, 1, 201)
        stuck = np.full_like(vin, 0.9)
        snm = static_noise_margin(butterfly_curves(vin, stuck))
        assert snm == pytest.approx(0.0, abs=0.02)

    def test_two_different_inverters(self):
        """Mismatched forward/backward inverters give the min of the two
        lobes: strictly less than the symmetric case."""
        vin = np.linspace(0, 1, 401)
        f1 = _step_vtc(vin, 1.0, 0.5, 100.0)
        f2 = _step_vtc(vin, 1.0, 0.28, 100.0)
        symmetric = static_noise_margin(butterfly_curves(vin, f1))
        mismatched = static_noise_margin(butterfly_curves(vin, f1, f2))
        assert mismatched < symmetric

    @given(st.floats(min_value=0.2, max_value=0.8),
           st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=30)
    def test_snm_bounded(self, switch, steep):
        vin = np.linspace(0, 1, 301)
        snm = static_noise_margin(butterfly_curves(
            vin, _step_vtc(vin, 1.0, switch, steep)))
        assert 0.0 <= snm <= 0.5 + 1e-9


class TestRealInverter:
    def test_nominal_inverter_snm_positive(self, nominal_pair, params):
        from repro.circuit.inverter import inverter_snm

        nt, pt = nominal_pair
        snm = inverter_snm(nt, pt, 0.4, params)
        assert 0.03 < snm < 0.2

    def test_snm_grows_with_vdd(self, nominal_pair, params):
        from repro.circuit.inverter import inverter_snm

        nt, pt = nominal_pair
        assert (inverter_snm(nt, pt, 0.5, params)
                > inverter_snm(nt, pt, 0.3, params))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            butterfly_curves(np.zeros(5), np.zeros(4))
