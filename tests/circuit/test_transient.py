"""Tests for the transient integrator against analytic circuits."""

import numpy as np
import pytest

from repro.circuit.dc import solve_dc
from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.transient import simulate_transient


def _rc_circuit(r=1e3, c=1e-12):
    circ = Circuit()
    vin = circ.node("in")
    out = circ.node("out")
    circ.fix(vin, 1.0)
    circ.add(Resistor(vin, out, r))
    circ.add(Capacitor(out, GROUND, c))
    return circ, out


class TestRCCharging:
    def test_exponential_charging(self):
        """V(t) = 1 - exp(-t/RC) within trapezoidal accuracy."""
        circ, out = _rc_circuit()
        tau = 1e-9
        v0 = np.zeros(circ.n_nodes)
        v0[circ.node("in")] = 1.0
        res = simulate_transient(circ, 5 * tau, tau / 100, v0)
        expected = 1.0 - np.exp(-res.time_s / tau)
        assert np.max(np.abs(res.v(out) - expected)) < 2e-3

    def test_trapezoidal_second_order(self):
        """Halving dt reduces the error ~4x (second-order accuracy)."""
        circ, out = _rc_circuit()
        tau = 1e-9
        v0 = np.zeros(circ.n_nodes)
        v0[circ.node("in")] = 1.0

        def max_err(dt):
            res = simulate_transient(circ, 3 * tau, dt, v0)
            return np.max(np.abs(res.v(out)
                                 - (1 - np.exp(-res.time_s / tau))))

        e1 = max_err(tau / 20)
        e2 = max_err(tau / 40)
        assert e1 / e2 > 3.0

    def test_ramp_input(self):
        """A slow ramp through an RC with tau << ramp time tracks the
        input with lag ~tau."""
        circ, out = _rc_circuit()
        tau = 1e-9
        t_ramp = 20 * tau
        circ.fixed[circ.node("in")] = lambda t: min(t / t_ramp, 1.0)
        v0 = np.zeros(circ.n_nodes)
        res = simulate_transient(circ, t_ramp, tau / 10, v0)
        i_mid = np.searchsorted(res.time_s, t_ramp / 2)
        expected = res.time_s[i_mid] / t_ramp - tau / t_ramp
        assert res.v(out)[i_mid] == pytest.approx(expected, abs=0.01)

    def test_supply_current_trace(self):
        circ, out = _rc_circuit()
        v0 = np.zeros(circ.n_nodes)
        v0[circ.node("in")] = 1.0
        res = simulate_transient(circ, 5e-9, 0.05e-9, v0,
                                 monitor_supplies=("in",))
        i_in = res.supply_currents[circ.node("in")]
        # Initial inrush ~ V/R, decaying to ~0.
        assert i_in[0] == pytest.approx(1e-3, rel=0.05)
        assert abs(i_in[-1]) < 1e-5

    def test_supply_energy_equals_cap_energy_plus_dissipation(self):
        """Charging a cap through a resistor takes C V^2 from the source
        (half stored, half dissipated)."""
        circ, out = _rc_circuit(r=1e3, c=1e-12)
        v0 = np.zeros(circ.n_nodes)
        v0[circ.node("in")] = 1.0
        res = simulate_transient(circ, 12e-9, 0.02e-9, v0,
                                 monitor_supplies=("in",))
        energy = res.supply_energy_j("in")
        assert energy == pytest.approx(1e-12 * 1.0 ** 2, rel=0.02)


class TestValidation:
    def test_rejects_bad_dt(self):
        circ, _ = _rc_circuit()
        with pytest.raises(ValueError):
            simulate_transient(circ, 1e-9, 0.0, np.zeros(circ.n_nodes))

    def test_rejects_bad_v0_shape(self):
        circ, _ = _rc_circuit()
        with pytest.raises(ValueError):
            simulate_transient(circ, 1e-9, 1e-11, np.zeros(7))

    def test_unmonitored_supply_energy_raises(self):
        circ, _ = _rc_circuit()
        res = simulate_transient(circ, 1e-10, 1e-11,
                                 np.zeros(circ.n_nodes))
        with pytest.raises(KeyError):
            res.supply_energy_j("in")


class TestInverterTransient:
    def test_output_switches(self, nominal_pair, params):
        from repro.circuit.inverter import build_inverter_chain

        nt, pt = nominal_pair
        circ = build_inverter_chain(nt, pt, 0.4, params)
        vin = circ.node("in")
        circ.fixed[vin] = 0.0
        dc = solve_dc(circ)
        assert dc.voltage("out") > 0.35

        circ.fixed[vin] = lambda t: 0.4 if t > 5e-12 else 0.0
        res = simulate_transient(circ, 60e-12, 0.25e-12, dc.voltages)
        assert res.v("out")[-1] < 0.05

    def test_charge_conservation_steady_state(self, nominal_pair, params):
        """With a constant input, the transient must hold the DC state."""
        from repro.circuit.inverter import build_inverter_chain

        nt, pt = nominal_pair
        circ = build_inverter_chain(nt, pt, 0.4, params)
        circ.fixed[circ.node("in")] = 0.0
        dc = solve_dc(circ)
        res = simulate_transient(circ, 20e-12, 0.5e-12, dc.voltages)
        drift = np.abs(res.voltages[-1] - dc.voltages).max()
        assert drift < 1e-4
