"""Tests for waveform metric extraction."""

import numpy as np
import pytest

from repro.circuit.metrics import (
    average_power_w,
    crossing_times,
    oscillation_frequency,
    propagation_delays,
)
from repro.errors import AnalysisError


class TestCrossingTimes:
    def test_linear_ramp(self):
        t = np.linspace(0, 1, 11)
        x = t.copy()
        c = crossing_times(t, x, 0.55, "rising")
        assert len(c) == 1
        assert c[0] == pytest.approx(0.55, abs=1e-12)

    def test_direction_filter(self):
        t = np.linspace(0, 2 * np.pi, 2001)
        x = np.sin(t)
        rising = crossing_times(t, x, 0.0, "rising")
        falling = crossing_times(t, x, 0.0, "falling")
        both = crossing_times(t, x, 0.0, "both")
        assert len(rising) + len(falling) == len(both)
        assert falling[0] == pytest.approx(np.pi, abs=1e-3)

    def test_no_crossings(self):
        t = np.linspace(0, 1, 11)
        assert crossing_times(t, np.ones(11), 2.0).size == 0

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            crossing_times(np.zeros(3), np.zeros(3), 0.0, "up")


class TestPropagationDelays:
    def test_known_shifted_square_waves(self):
        t = np.linspace(0, 100, 10001)
        vdd = 1.0
        vin = np.where((t % 50) < 25, vdd, 0.0)
        delay = 3.0
        vout = np.where(((t - delay) % 50) < 25, 0.0, vdd)  # inverted
        t_plh, t_phl = propagation_delays(t, vin, vout, vdd)
        assert t_plh == pytest.approx(delay, abs=0.02)
        assert t_phl == pytest.approx(delay, abs=0.02)

    def test_missing_edge_raises(self):
        t = np.linspace(0, 10, 101)
        vin = np.where(t > 5, 1.0, 0.0)
        vout = np.ones_like(t)  # output never falls
        with pytest.raises(AnalysisError):
            propagation_delays(t, vin, vout, 1.0)


class TestOscillationFrequency:
    def test_sine_frequency(self):
        f0 = 3.7e9
        t = np.linspace(0, 3e-9, 6001)
        x = 0.5 + 0.5 * np.sin(2 * np.pi * f0 * t)
        f = oscillation_frequency(t, x, 1.0, settle_fraction=0.1)
        assert f == pytest.approx(f0, rel=1e-3)

    def test_requires_enough_periods(self):
        t = np.linspace(0, 1e-9, 101)
        x = 0.5 + 0.5 * np.sin(2 * np.pi * 1e9 * t)  # one period
        with pytest.raises(AnalysisError):
            oscillation_frequency(t, x, 1.0, settle_fraction=0.5)


class TestAveragePower:
    def test_constant_current(self):
        t = np.linspace(0, 1, 101)
        i = np.full(101, 2e-6)
        assert average_power_w(t, i, 0.5) == pytest.approx(1e-6)

    def test_settle_fraction_skips_transient(self):
        t = np.linspace(0, 1, 1001)
        i = np.where(t < 0.5, 1.0, 2e-6)  # huge inrush then steady
        p = average_power_w(t, i, 1.0, settle_fraction=0.6)
        assert p == pytest.approx(2e-6, rel=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_power_w(np.zeros(5), np.zeros(4), 1.0)
