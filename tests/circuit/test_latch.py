"""Tests for the latch builder and its metrics."""

import pytest

from repro.circuit.latch import (
    build_latch,
    latch_butterfly,
    latch_snm,
    latch_static_power,
)
from repro.circuit.inverter import inverter_snm, inverter_static_power_w


class TestLatch:
    def test_build_validates(self, nominal_pair, params):
        nt, pt = nominal_pair
        c = build_latch(nt, pt, 0.4, params)
        c.validate()
        assert c.n_nodes == 2 + 1 + 8  # q, qb, vdd, 2x4 internals

    def test_snm_matches_inverter_pair(self, nominal_pair, params):
        """A latch of two identical inverters has the inverter-pair SNM."""
        nt, pt = nominal_pair
        assert latch_snm(nt, pt, 0.4, params) == pytest.approx(
            inverter_snm(nt, pt, 0.4, params), abs=5e-3)

    def test_butterfly_data_shape(self, nominal_pair, params):
        nt, pt = nominal_pair
        b = latch_butterfly(nt, pt, 0.4, params, n_points=31)
        assert b.v_in.shape == (31,)
        assert b.forward.shape == (31,)

    def test_static_power_two_inverters(self, nominal_pair, params):
        """Hold-state leakage ~ 2x the single-inverter leakage (each
        inverter sits at one of the two input states)."""
        nt, pt = nominal_pair
        p_latch = latch_static_power(nt, pt, 0.4, params)
        p_inv = inverter_static_power_w(nt, pt, 0.4, params)
        assert p_latch == pytest.approx(2.0 * p_inv, rel=0.3)

    def test_static_power_positive(self, nominal_pair, params):
        nt, pt = nominal_pair
        assert latch_static_power(nt, pt, 0.4, params) > 0.0
