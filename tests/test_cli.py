"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "table1" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_writes_output_file(self, tmp_path, tech, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "fig2", "--fast", "--out", str(out)]) == 0
        assert "Fig 2" in out.read_text()
