"""Tests for operating-point selection logic on synthetic grids."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.exploration.operating_point import (
    matched_edp_snm_higher_vt,
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    min_edp_point,
)
from repro.exploration.sweep import ExplorationGrid


def _synthetic_grid():
    """Analytic landscape with a known optimum structure."""
    vt = np.linspace(0.05, 0.3, 11)
    vdd = np.linspace(0.1, 0.7, 13)
    vtg, vddg = np.meshgrid(vt, vdd, indexing="ij")
    freq = 1e9 * 20 * (vddg - vtg).clip(0.01) ** 1.5
    # EDP bowl with minimum at (0.15, 0.3).
    edp = 1e-27 * (1 + 50 * (vtg - 0.15) ** 2 + 20 * (vddg - 0.3) ** 2)
    snm = 0.4 * vddg * (0.5 + vtg)
    power = 1e-6 * vddg ** 2
    return ExplorationGrid(vt=vt, vdd=vdd, frequency_hz=freq,
                           edp_j_s=edp, snm_v=snm,
                           total_power_w=power, static_power_w=power / 10)


class TestMinEDP:
    def test_finds_bowl_minimum(self):
        grid = _synthetic_grid()
        p = min_edp_point(grid)
        assert p.vt == pytest.approx(0.15, abs=0.02)
        assert p.vdd == pytest.approx(0.3, abs=0.05)

    def test_nan_grid_raises(self):
        grid = _synthetic_grid()
        grid.edp_j_s[:] = np.nan
        with pytest.raises(AnalysisError):
            min_edp_point(grid)


class TestPointA:
    def test_frequency_floor_respected(self):
        grid = _synthetic_grid()
        p = min_edp_at_frequency(grid, 3e9)
        assert p.frequency_hz >= 3e9

    def test_tighter_floor_higher_edp(self):
        grid = _synthetic_grid()
        loose = min_edp_at_frequency(grid, 1e9)
        tight = min_edp_at_frequency(grid, 4e9)
        assert tight.edp_j_s >= loose.edp_j_s

    def test_unreachable_frequency_raises(self):
        grid = _synthetic_grid()
        with pytest.raises(AnalysisError):
            min_edp_at_frequency(grid, 1e15)


class TestPointB:
    def test_both_floors_respected(self):
        grid = _synthetic_grid()
        p = min_edp_at_frequency_and_snm(grid, 2e9, 0.1)
        assert p.frequency_hz >= 2e9
        assert p.snm_v >= 0.1

    def test_b_never_cheaper_than_a(self):
        grid = _synthetic_grid()
        a = min_edp_at_frequency(grid, 2e9)
        b = min_edp_at_frequency_and_snm(grid, 2e9, 0.1)
        assert b.edp_j_s >= a.edp_j_s - 1e-40

    def test_unreachable_snm_raises(self):
        grid = _synthetic_grid()
        with pytest.raises(AnalysisError):
            min_edp_at_frequency_and_snm(grid, 1e9, 10.0)


class TestPointC:
    def test_higher_vt_matched_metrics(self):
        grid = _synthetic_grid()
        b = min_edp_at_frequency_and_snm(grid, 2e9, 0.08)
        c = matched_edp_snm_higher_vt(grid, b, edp_tolerance=0.5,
                                      snm_tolerance=0.5)
        assert c.vt > b.vt
        assert c.edp_j_s == pytest.approx(b.edp_j_s, rel=0.5)

    def test_no_match_raises(self):
        grid = _synthetic_grid()
        b = min_edp_at_frequency_and_snm(grid, 2e9, 0.08)
        with pytest.raises(AnalysisError):
            matched_edp_snm_higher_vt(grid, b, edp_tolerance=1e-9,
                                      snm_tolerance=1e-9)
