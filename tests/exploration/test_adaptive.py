"""Determinism and economy of the adaptive V_DD-V_T refinement."""

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError
from repro.exploration.adaptive import (
    auto_levels,
    coarse_indices,
    refine_vdd_vt,
)
from repro.exploration.operating_point import (
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    min_edp_point,
)
from repro.exploration.sweep import sweep_vdd_vt
from repro.runtime import faults

# The fast Fig. 3 grid: large enough for two refinement levels, small
# enough for test time.  8 V_T rows x 8 V_DD columns = 64 cells.
VT = np.linspace(0.02, 0.3, 8)
VDD = np.linspace(0.1, 0.7, 8)

ARRAYS = ("frequency_hz", "edp_j_s", "snm_v", "total_power_w",
          "static_power_w")


@pytest.fixture(autouse=True)
def _disarm():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def adaptive(tech):
    faults.disable()
    return refine_vdd_vt(tech, VT, VDD)


@pytest.fixture(scope="module")
def dense(tech):
    faults.disable()
    return sweep_vdd_vt(tech, VT, VDD)


def _assert_same_result(a, b):
    for name in ARRAYS:
        assert np.array_equal(getattr(a.grid, name),
                              getattr(b.grid, name),
                              equal_nan=True), name
    assert np.array_equal(a.solved, b.solved)
    assert a.n_solves == b.n_solves
    assert a.n_waves == b.n_waves
    assert a.grid.failures == b.grid.failures


class TestLattice:
    def test_coarse_indices_keep_edges(self):
        assert coarse_indices(8, 4) == [0, 4, 7]
        assert coarse_indices(9, 4) == [0, 4, 8]
        assert coarse_indices(3, 8) == [0, 2]

    def test_auto_levels_needs_three_points_per_axis(self):
        assert auto_levels(8, 8) == 2    # stride 4 -> [0, 4, 7]
        assert auto_levels(15, 13) == 3  # stride 8 -> [0, 8, 14]
        assert auto_levels(3, 3) == 0


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_serial_equals_parallel_bitwise(self, tech, adaptive, workers):
        parallel = refine_vdd_vt(tech, VT, VDD, workers=workers)
        _assert_same_result(parallel, adaptive)

    def test_kill_then_resume_bitwise(self, tech, adaptive):
        # The first run dies on its second snapshot write (the save
        # after the first refinement wave); the resumed run restores
        # the coarse memo and replays the rest of the schedule bitwise.
        faults.enable("checkpoint@1")
        with pytest.raises(CheckpointError):
            refine_vdd_vt(tech, VT, VDD, checkpoint=1)
        faults.disable()
        obs.enable()
        resumed = refine_vdd_vt(tech, VT, VDD, checkpoint=1, resume=True)
        _assert_same_result(resumed, adaptive)
        counters = obs.snapshot()["counters"]
        assert counters["resilience.checkpoint_resumes"] == 1
        assert counters["adaptive.cells_restored"] > 0

    def test_completed_run_clears_checkpoint(self, tech, adaptive):
        finished = refine_vdd_vt(tech, VT, VDD, checkpoint=1)
        resumed = refine_vdd_vt(tech, VT, VDD, checkpoint=1, resume=True)
        # Nothing left to restore: the clean run cleared its snapshot.
        _assert_same_result(finished, adaptive)
        _assert_same_result(resumed, adaptive)


class TestAccuracy:
    def test_solved_cells_match_dense_bitwise(self, adaptive, dense):
        mask = adaptive.solved & ~adaptive.invalid
        for name in ARRAYS:
            a = getattr(adaptive.grid, name)[mask]
            d = getattr(dense, name)[mask]
            assert np.array_equal(a, d, equal_nan=True), name

    def test_figures_of_merit_match_dense(self, adaptive, dense):
        for grid_fn in (
                min_edp_point,
                lambda g: min_edp_at_frequency(g, 3e9),
                lambda g: min_edp_at_frequency_and_snm(
                    g, 3e9, 0.6 * float(np.nanmax(g.snm_v)))):
            a = grid_fn(adaptive.grid)
            d = grid_fn(dense)
            assert (a.vt, a.vdd) == (d.vt, d.vdd)
            assert a.frequency_hz == d.frequency_hz
            assert a.edp_j_s == d.edp_j_s

    def test_fill_extends_beyond_solved_cells(self, adaptive):
        # Every unsolved valid cell with a solved row- or column-bracket
        # is interpolated; the invalid wedge stays NaN.  Most of the
        # plane ends up covered even though only a fraction was solved.
        valid = ~adaptive.invalid
        finite = np.isfinite(adaptive.grid.frequency_hz)
        n_solved = int((adaptive.solved & valid).sum())
        assert int((finite & valid).sum()) > n_solved
        assert finite[valid].mean() >= 0.6
        assert np.all(np.isnan(adaptive.grid.frequency_hz[~valid]))

    def test_interpolation_never_undershoots_edp(self, adaptive):
        # The argmin safety property: filled cells cannot dip below the
        # solved minimum, so reported optima sit on solved physics.
        solved_min = np.nanmin(
            adaptive.grid.edp_j_s[adaptive.solved & ~adaptive.invalid])
        assert np.nanmin(adaptive.grid.edp_j_s) >= solved_min - 0.0


class TestEconomy:
    def test_fraction_of_dense_solves(self, adaptive):
        assert adaptive.n_solves < adaptive.n_valid
        assert adaptive.solves_saved == (adaptive.n_valid
                                         - adaptive.n_solves)
        assert adaptive.n_solves == (adaptive.n_coarse
                                     + adaptive.n_refined
                                     + adaptive.n_polish)

    def test_observability_counters(self, tech):
        obs.enable()
        refine_vdd_vt(tech, VT, VDD)
        counters = obs.snapshot()["counters"]
        assert counters["adaptive.waves"] >= 1
        assert counters["adaptive.cells_refined"] >= 1
        assert counters["adaptive.solves_saved"] > 0
