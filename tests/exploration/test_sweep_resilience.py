"""Quarantine and crash recovery in the V_DD-V_T exploration sweep."""

import numpy as np
import pytest

from repro import obs
from repro.errors import ConvergenceError, ParallelMapError
from repro.exploration.sweep import sweep_vdd_vt
from repro.runtime import faults

VT = np.array([0.08, 0.15, 0.22])
VDD = np.array([0.25, 0.4])


@pytest.fixture(autouse=True)
def _disarm():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def baseline(tech):
    faults.disable()
    return sweep_vdd_vt(tech, VT, VDD, workers=1)


class TestRowQuarantine:
    def test_failed_row_is_nan_masked_with_record(self, tech, baseline):
        faults.enable("scf@1")
        grid = sweep_vdd_vt(tech, VT, VDD, workers=1)
        assert len(grid.failures) == 1
        record = grid.failures[0]
        assert record.site == "exploration"
        assert record.index == 1
        assert record.bias == {"vt": float(VT[1])}
        assert np.all(np.isnan(grid.frequency_hz[1]))
        # untouched rows match the fault-free baseline exactly
        for row in (0, 2):
            assert np.array_equal(grid.frequency_hz[row],
                                  baseline.frequency_hz[row],
                                  equal_nan=True)

    def test_serial_equals_parallel_bitwise(self, tech):
        faults.enable("scf@1")
        serial = sweep_vdd_vt(tech, VT, VDD, workers=1)
        faults.reset_attempts()
        parallel = sweep_vdd_vt(tech, VT, VDD, workers=3)
        for name in ("frequency_hz", "edp_j_s", "snm_v", "total_power_w",
                     "static_power_w"):
            assert np.array_equal(getattr(serial, name),
                                  getattr(parallel, name),
                                  equal_nan=True), name
        assert serial.failures == parallel.failures

    def test_strict_raises(self, tech):
        faults.enable("scf@1")
        with pytest.raises(ConvergenceError):
            sweep_vdd_vt(tech, VT, VDD, workers=1, strict=True)


class TestWorkerCrashRecovery:
    def test_crashed_worker_rows_recomputed(self, tech, baseline):
        obs.enable()
        faults.enable("worker@1")
        grid = sweep_vdd_vt(tech, VT, VDD, workers=2)
        assert grid.failures == ()
        for name in ("frequency_hz", "edp_j_s", "snm_v"):
            assert np.array_equal(getattr(grid, name),
                                  getattr(baseline, name),
                                  equal_nan=True), name
        counters = obs.snapshot()["counters"]
        assert counters["resilience.worker_crash_recoveries"] == 1

    def test_strict_propagates_pool_failure(self, tech):
        faults.enable("worker@1")
        with pytest.raises(ParallelMapError):
            sweep_vdd_vt(tech, VT, VDD, workers=2, strict=True)
