"""Tests for the V_DD-V_T exploration sweep (coarse grid)."""

import numpy as np
import pytest

from repro.exploration.sweep import sweep_vdd_vt


@pytest.fixture(scope="module")
def small_grid(tech):
    vt = np.array([0.08, 0.15, 0.22])
    vdd = np.array([0.25, 0.4, 0.55])
    return sweep_vdd_vt(tech, vt, vdd, with_snm=True, snm_points=21)


class TestSweep:
    def test_shapes(self, small_grid):
        assert small_grid.frequency_hz.shape == (3, 3)
        assert small_grid.edp_j_s.shape == (3, 3)
        assert small_grid.snm_v.shape == (3, 3)

    def test_all_points_valid_in_operating_window(self, small_grid):
        assert np.all(np.isfinite(small_grid.frequency_hz))
        assert np.all(small_grid.frequency_hz > 0.0)
        assert np.all(small_grid.edp_j_s > 0.0)

    def test_frequency_increases_with_vdd(self, small_grid):
        """At fixed V_T, higher V_DD drives faster (paper: delay falls
        with V_DD)."""
        f = small_grid.frequency_hz
        assert np.all(np.diff(f, axis=1) > 0.0)

    def test_frequency_decreases_with_vt(self, small_grid):
        """At fixed V_DD, raising V_T slows the oscillator."""
        f = small_grid.frequency_hz
        assert np.all(np.diff(f, axis=0) < 0.0)

    def test_static_power_minimized_near_ambipolar_alignment(self, tech):
        """Unlike CMOS, GNRFET leakage is minimized when the offset puts
        the off-state at the ambipolar minimum (V_T ~ vt0 - V_DD/2) and
        *increases* for higher V_T - the mechanism behind the paper's
        point-C observation that raising V_T does not buy robustness."""
        vdd = 0.4
        vt_star = tech.vt0 - vdd / 2.0
        vt = np.array([vt_star - 0.08, vt_star, vt_star + 0.1])
        grid = sweep_vdd_vt(tech, vt, np.array([vdd]), with_snm=False)
        p = grid.static_power_w[:, 0]
        assert p[1] == min(p)
        assert p[2] > p[1]

    def test_snm_increases_with_vdd(self, small_grid):
        snm = small_grid.snm_v
        assert np.all(np.diff(snm, axis=1) > -1e-4)

    def test_log_edp_finite(self, small_grid):
        assert np.all(np.isfinite(small_grid.log_edp()))

    def test_edp_has_interior_structure(self, tech):
        """EDP must be non-monotonic in V_T somewhere (the paper's
        optimum at intermediate V_T/V_DD)."""
        vt = np.linspace(0.05, 0.28, 6)
        vdd = np.array([0.3])
        grid = sweep_vdd_vt(tech, vt, vdd, with_snm=False)
        edp = grid.edp_j_s[:, 0]
        i_min = int(np.argmin(edp))
        assert 0 < i_min < len(vt) - 1
