"""Tests for the temperature study."""

import pytest

from repro.exploration.temperature import (
    leakage_activation_energy_ev,
    temperature_study,
)


@pytest.fixture(scope="module")
def points():
    # Two temperatures keep the test affordable; the extension bench
    # runs the full sweep.
    return temperature_study(temperatures_k=(300.0, 400.0))


class TestTemperatureStudy:
    def test_leakage_grows_with_temperature(self, points):
        assert points[1].i_min_a > 2.0 * points[0].i_min_a

    def test_static_power_grows_with_temperature(self, points):
        assert (points[1].inverter_static_power_w
                > points[0].inverter_static_power_w)

    def test_on_current_mildly_affected(self, points):
        """The on-state is tunneling-dominated: far weaker T dependence
        than the activated leakage floor."""
        on_ratio = points[1].i_on_a / points[0].i_on_a
        leak_ratio = points[1].i_min_a / points[0].i_min_a
        assert on_ratio < 0.5 * leak_ratio
        assert 0.5 < on_ratio < 2.0

    def test_activation_energy_fraction_of_half_gap(self, points):
        """Arrhenius slope of the leakage floor: a sizeable fraction of
        the N=12 half-gap (0.3 eV), reduced by tunneling."""
        e_a = leakage_activation_energy_ev(points)
        assert 0.03 < e_a < 0.4

    def test_needs_two_points(self, points):
        with pytest.raises(ValueError):
            leakage_activation_energy_ev(points[:1])
