"""Tests for the GNRFETTechnology bundle."""

import pytest

from repro.exploration.technology import GNRFETTechnology


class TestTechnology:
    def test_vt0_near_paper(self, tech):
        assert tech.vt0 == pytest.approx(0.30, abs=0.05)

    def test_offset_semantics(self, tech):
        """offset = vt0 - vt: asking for a lower V_T means a larger
        positive work-function offset (curve shifts left)."""
        assert tech.gate_offset_for_vt(0.13) == pytest.approx(
            tech.vt0 - 0.13)
        assert tech.gate_offset_for_vt(0.1) > tech.gate_offset_for_vt(0.2)

    def test_array_table_scales_current(self, tech):
        single = tech.ribbon_table
        array = tech.array_table(tech.vt0)  # zero offset
        assert array.current(0.5, 0.5) == pytest.approx(
            tech.params.n_ribbons * single.current(0.5, 0.5), rel=1e-9)

    def test_requested_vt_is_realized(self, tech):
        """Extracting V_T from the offset table recovers the request."""
        import numpy as np
        from repro.device.vt_extraction import extract_vt_linear

        target = 0.15
        table = tech.array_table(target)
        vgs = np.linspace(0.0, 0.8, 33)
        ids = np.array([table.current(float(v), 0.05) for v in vgs])
        assert extract_vt_linear(vgs, ids, vd=0.05) == pytest.approx(
            target, abs=0.04)

    def test_inverter_tables_symmetric(self, tech):
        nt, pt = tech.inverter_tables(0.13)
        assert nt is pt  # ambipolar symmetric device

    def test_build_uses_cache(self, tech):
        """A second build with the same geometry reuses the cached
        device table (identity, not just equality)."""
        again = GNRFETTechnology.build(tech.geometry, tech.params)
        assert again.ribbon_table is tech.ribbon_table
