"""Tests for marching-squares contour extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exploration.contours import contour_lines, interpolate_on_grid


class TestInterpolation:
    def test_exact_at_nodes(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0])
        z = np.arange(6, dtype=float).reshape(3, 2)
        assert interpolate_on_grid(x, y, z, 1.0, 1.0) == 3.0

    def test_bilinear_exact(self):
        x = np.linspace(0, 1, 5)
        y = np.linspace(0, 1, 5)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        z = 2 * xx + 3 * yy + 1
        assert interpolate_on_grid(x, y, z, 0.37, 0.61) == pytest.approx(
            2 * 0.37 + 3 * 0.61 + 1)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            interpolate_on_grid(np.zeros(3), np.zeros(2),
                                np.zeros((2, 3)), 0, 0)


class TestContours:
    def test_linear_field_contour_is_straight(self):
        x = np.linspace(0, 1, 11)
        y = np.linspace(0, 1, 11)
        z = np.add.outer(x, np.zeros(11))  # z = x
        segs = contour_lines(x, y, z, 0.45)
        assert segs
        for (x1, _), (x2, _) in segs:
            assert x1 == pytest.approx(0.45, abs=1e-9)
            assert x2 == pytest.approx(0.45, abs=1e-9)

    def test_circular_contour_radius(self):
        x = np.linspace(-1, 1, 41)
        y = np.linspace(-1, 1, 41)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        z = np.sqrt(xx ** 2 + yy ** 2)
        segs = contour_lines(x, y, z, 0.5)
        for p1, p2 in segs:
            for px, py in (p1, p2):
                assert np.hypot(px, py) == pytest.approx(0.5, abs=0.02)

    def test_level_outside_range_empty(self):
        x = y = np.linspace(0, 1, 5)
        z = np.zeros((5, 5))
        assert contour_lines(x, y, z, 3.0) == []

    def test_nan_cells_skipped(self):
        x = y = np.linspace(0, 1, 5)
        z = np.add.outer(x, np.zeros(5))
        z[2, 2] = np.nan
        segs = contour_lines(x, y, z, 0.5)
        assert segs  # still produces contours from valid cells
        for p1, p2 in segs:
            assert np.isfinite(p1).all() and np.isfinite(p2).all()

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=20)
    def test_segment_endpoints_on_level(self, level):
        """Bilinear interpolation along each returned segment endpoint
        must reproduce the contour level (on a smooth field)."""
        x = np.linspace(0, 1, 21)
        y = np.linspace(0, 1, 21)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        z = 0.5 * xx + 0.5 * yy
        for p1, p2 in contour_lines(x, y, z, level):
            for px, py in (p1, p2):
                v = interpolate_on_grid(x, y, z, px, py)
                assert v == pytest.approx(level, abs=0.02)
