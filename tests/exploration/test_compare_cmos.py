"""Tests for the Table 1 comparison (estimate path for speed)."""

import pytest

from repro.exploration.compare_cmos import cmos_row, gnrfet_row, table1_comparison


class TestRows:
    def test_cmos_row_fields(self):
        row = cmos_row(22, 0.8)
        assert row.label == "22nm@0.8V"
        assert row.frequency_ghz > 0
        assert row.edp_fj_ps > 0
        assert 0 < row.snm_v < 0.4

    def test_gnrfet_row_estimate(self, tech):
        row = gnrfet_row(tech, "B", 0.13, 0.4, transient=False)
        assert 1.0 < row.frequency_ghz < 8.0
        assert row.edp_fj_ps > 0


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self, tech):
        points = {"A": (0.06, 0.3), "B": (0.13, 0.4), "C": (0.23, 0.4)}
        return table1_comparison(tech, points, transient=False)

    def test_row_counts(self, table):
        gnr, cmos, _, _ = table
        assert len(gnr) == 3
        assert len(cmos) == 9

    def test_gnrfet_wins_edp_by_large_factor(self, table):
        """The paper's headline: scaled-CMOS EDP is 40-168x the GNRFET
        point-B EDP.  We require >= 20x everywhere and the whole range
        within [20, 1000] (shape contract: GNRFETs win by orders of
        magnitude)."""
        _, _, r_min, r_max = table
        assert r_min > 20.0
        assert r_max < 1000.0

    def test_point_c_slower_than_b(self, table):
        """"the frequency of the ring oscillator for operating point B is
        40% greater than that for operating point C"."""
        gnr, _, _, _ = table
        by_label = {r.label: r for r in gnr}
        ratio = by_label["B"].frequency_ghz / by_label["C"].frequency_ghz
        assert 1.2 < ratio < 2.2

    def test_cmos_snm_higher_than_gnrfet(self, table):
        """GNRFETs have lower noise margins than scaled CMOS."""
        gnr, cmos, _, _ = table
        assert max(r.snm_v for r in gnr) < min(r.snm_v for r in cmos)

    def test_gnrfet_competitive_frequency(self, table):
        """At comparable operating points the GNRFET ring is in the same
        GHz class as the CMOS nodes."""
        gnr, cmos, _, _ = table
        f_b = next(r for r in gnr if r.label == "B").frequency_ghz
        assert 1.0 < f_b < 10.0
