"""Tests for the discretized-normal sampler."""

import numpy as np
import pytest

from repro.variability.sampling import (
    discretized_level_probabilities,
    discretized_normal_choice,
)


class TestProbabilities:
    def test_exact_values(self):
        p_lo, p_mid, p_hi = discretized_level_probabilities()
        assert p_lo == p_hi
        assert p_mid == pytest.approx(0.3829, abs=1e-3)
        assert p_lo + p_mid + p_hi == pytest.approx(1.0)


class TestSampler:
    def test_single_draw_type(self):
        rng = np.random.default_rng(0)
        v = discretized_normal_choice(rng, (9, 12, 15))
        assert v in (9, 12, 15)

    def test_batch_draw(self):
        rng = np.random.default_rng(0)
        vs = discretized_normal_choice(rng, (-1.0, 0.0, 1.0), size=100)
        assert len(vs) == 100
        assert set(vs) <= {-1.0, 0.0, 1.0}

    def test_empirical_frequencies(self):
        rng = np.random.default_rng(42)
        n = 40000
        vs = np.array(discretized_normal_choice(rng, (0, 1, 2), size=n))
        p_lo, p_mid, p_hi = discretized_level_probabilities()
        assert np.mean(vs == 1) == pytest.approx(p_mid, abs=0.01)
        assert np.mean(vs == 0) == pytest.approx(p_lo, abs=0.01)
        assert np.mean(vs == 2) == pytest.approx(p_hi, abs=0.01)

    def test_symmetry(self):
        rng = np.random.default_rng(7)
        vs = np.array(discretized_normal_choice(rng, (-1, 0, 1), size=40000))
        assert abs(np.mean(vs)) < 0.02

    def test_reproducible_with_seed(self):
        a = discretized_normal_choice(np.random.default_rng(5), (1, 2, 3),
                                      size=20)
        b = discretized_normal_choice(np.random.default_rng(5), (1, 2, 3),
                                      size=20)
        assert a == b

    def test_rejects_wrong_level_count(self):
        with pytest.raises(ValueError):
            discretized_normal_choice(np.random.default_rng(0), (1, 2))
