"""Tests for the charge-impurity sensitivity study (Table 3 mechanics)."""

import pytest

from repro.circuit.inverter import characterize_inverter
from repro.variability.variants import DeviceVariant
from repro.variability.width import sensitivity_entry


@pytest.fixture(scope="module")
def nominal_metrics(tech):
    return characterize_inverter(*tech.inverter_tables(0.13), 0.4,
                                 tech.params)


class TestWorstCaseImpurity:
    """Paper's worst delay cell: -2q on the n-device, +2q on the p-device
    (both degraded after polarity mirroring): delay +8-92%."""

    @pytest.fixture(scope="class")
    def entry(self, tech, nominal_metrics):
        return sensitivity_entry(
            tech, DeviceVariant(impurity_e=-2.0),
            DeviceVariant(impurity_e=+2.0), nominal_metrics, 0.4, 0.13)

    def test_delay_degrades(self, entry):
        one, all_ = entry.delay_pct
        assert one > 0.0
        assert all_ > one
        assert all_ > 20.0

    def test_snm_plus_minus_q_degrades(self, tech, nominal_metrics):
        """Paper: "simultaneous +q and -q charge impurities affecting
        ... n-type and p-type GNRs respectively degrades the noise
        margin by 14-40%" (the +-2q cell, by contrast, shows a small
        *improvement* in the paper's Table 3 as in ours)."""
        entry = sensitivity_entry(
            tech, DeviceVariant(impurity_e=+1.0),
            DeviceVariant(impurity_e=-1.0), nominal_metrics, 0.4, 0.13)
        assert entry.snm_pct[1] < -3.0


class TestAsymmetry:
    def test_large_degradation_small_improvement(self, tech,
                                                 nominal_metrics):
        """"The effect of charge impurities is highly asymmetric, with
        large degradation ... and only small improvements"."""
        worst = sensitivity_entry(
            tech, DeviceVariant(impurity_e=-2.0),
            DeviceVariant(impurity_e=+2.0), nominal_metrics, 0.4, 0.13)
        best = sensitivity_entry(
            tech, DeviceVariant(impurity_e=+1.0),
            DeviceVariant(impurity_e=-1.0), nominal_metrics, 0.4, 0.13)
        degradation = worst.delay_pct[1]
        improvement = -best.delay_pct[1]
        assert degradation > 0.0
        assert improvement < degradation

    def test_polarity_symmetry_of_the_complementary_pair(
            self, tech, nominal_metrics):
        """Swapping (q_n, q_p) -> (-q_p, -q_n) exchanges the roles of the
        two devices of the (symmetric) inverter: delay must match."""
        a = sensitivity_entry(
            tech, DeviceVariant(impurity_e=-1.0),
            DeviceVariant(impurity_e=+1.0), nominal_metrics, 0.4, 0.13)
        b = sensitivity_entry(
            tech, DeviceVariant(impurity_e=-1.0),
            DeviceVariant(impurity_e=+1.0), nominal_metrics, 0.4, 0.13)
        assert a.delay_pct[1] == pytest.approx(b.delay_pct[1], abs=1.0)


class TestMildVsWidth:
    def test_impurities_gentler_than_width_on_static_power(
            self, tech, nominal_metrics):
        """"Charge impurities affect static power ... to a smaller extent"
        than width variations."""
        width_entry = sensitivity_entry(
            tech, DeviceVariant(n_index=18), DeviceVariant(n_index=18),
            nominal_metrics, 0.4, 0.13)
        imp_entry = sensitivity_entry(
            tech, DeviceVariant(impurity_e=+1.0),
            DeviceVariant(impurity_e=-1.0), nominal_metrics, 0.4, 0.13)
        assert (abs(imp_entry.static_power_pct[1])
                < abs(width_entry.static_power_pct[1]))
