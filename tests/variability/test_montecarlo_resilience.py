"""Per-sample quarantine and checkpoint/resume in the Monte Carlo."""

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError, ConvergenceError
from repro.runtime import faults
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo

N_SAMPLES = 20


@pytest.fixture(autouse=True)
def _disarm():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def baseline(tech):
    faults.disable()
    return run_ring_oscillator_monte_carlo(tech, n_samples=N_SAMPLES,
                                           seed=2008, workers=1)


class TestSampleQuarantine:
    def test_failed_samples_are_nan_rows_with_records(self, tech, baseline):
        faults.enable("scf@3,7")
        result = run_ring_oscillator_monte_carlo(tech, n_samples=N_SAMPLES,
                                                 seed=2008, workers=1)
        assert {f.index for f in result.failures} == {3, 7}
        assert all(f.site == "montecarlo" for f in result.failures)
        assert np.isnan(result.frequencies_hz[3])
        assert np.isnan(result.frequencies_hz[7])
        mask = np.ones(N_SAMPLES, dtype=bool)
        mask[[3, 7]] = False
        assert np.array_equal(result.frequencies_hz[mask],
                              baseline.frequencies_hz[mask])
        # shift properties skip the quarantined NaN rows
        assert np.isfinite(result.mean_frequency_shift)

    def test_serial_equals_parallel_bitwise(self, tech):
        faults.enable("scf@3,7")
        serial = run_ring_oscillator_monte_carlo(tech, n_samples=N_SAMPLES,
                                                 seed=2008, workers=1)
        faults.reset_attempts()
        parallel = run_ring_oscillator_monte_carlo(
            tech, n_samples=N_SAMPLES, seed=2008, workers=4)
        assert np.array_equal(serial.frequencies_hz,
                              parallel.frequencies_hz, equal_nan=True)
        assert np.array_equal(serial.static_power_w,
                              parallel.static_power_w, equal_nan=True)
        assert serial.failures == parallel.failures

    def test_strict_raises_with_sample_index(self, tech):
        faults.enable("scf@7")
        with pytest.raises(ConvergenceError) as err:
            run_ring_oscillator_monte_carlo(tech, n_samples=N_SAMPLES,
                                            seed=2008, workers=1,
                                            strict=True)
        assert err.value.context["sample_index"] == 7


class TestCheckpointResume:
    def test_killed_then_resumed_equals_uninterrupted(self, tech, baseline):
        faults.enable("checkpoint@1")  # second snapshot write dies
        with pytest.raises(CheckpointError):
            run_ring_oscillator_monte_carlo(tech, n_samples=N_SAMPLES,
                                            seed=2008, workers=1,
                                            checkpoint=5)
        faults.disable()
        resumed = run_ring_oscillator_monte_carlo(
            tech, n_samples=N_SAMPLES, seed=2008, workers=1,
            checkpoint=5, resume=True)
        assert np.array_equal(resumed.frequencies_hz,
                              baseline.frequencies_hz)
        assert np.array_equal(resumed.dynamic_power_w,
                              baseline.dynamic_power_w)
        assert np.array_equal(resumed.static_power_w,
                              baseline.static_power_w)
        assert resumed.variant_counts == baseline.variant_counts
        assert resumed.failures == ()

    def test_completed_run_clears_checkpoint(self, tech, baseline):
        first = run_ring_oscillator_monte_carlo(
            tech, n_samples=N_SAMPLES, seed=2008, workers=1, checkpoint=5)
        assert np.array_equal(first.frequencies_hz,
                              baseline.frequencies_hz)
        resumed = run_ring_oscillator_monte_carlo(
            tech, n_samples=N_SAMPLES, seed=2008, workers=1,
            checkpoint=5, resume=True)
        assert np.array_equal(resumed.frequencies_hz,
                              baseline.frequencies_hz)


class TestWorkerCrashRecovery:
    def test_crashed_worker_batches_recomputed(self, tech, baseline):
        obs.enable()
        # batch starts key the worker site; with 20 samples over 8
        # batches the second batch starts at sample 3
        faults.enable("worker@3")
        result = run_ring_oscillator_monte_carlo(
            tech, n_samples=N_SAMPLES, seed=2008, workers=2)
        assert np.array_equal(result.frequencies_hz,
                              baseline.frequencies_hz)
        assert result.variant_counts == baseline.variant_counts
        counters = obs.snapshot()["counters"]
        assert counters["resilience.worker_crash_recoveries"] == 1
