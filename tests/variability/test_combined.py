"""Tests for the simultaneous width+impurity study (Table 4 mechanics)."""

import pytest

from repro.circuit.inverter import characterize_inverter
from repro.variability.variants import DeviceVariant
from repro.variability.width import sensitivity_entry


@pytest.fixture(scope="module")
def nominal_metrics(tech):
    return characterize_inverter(*tech.inverter_tables(0.13), 0.4,
                                 tech.params)


@pytest.fixture(scope="module")
def worst_entry(tech, nominal_metrics):
    """Paper Table 4 worst static-power cell: both devices wide and
    impurity-degraded (n: 18/-q, p: 18/+q -> mirrored +q hurts p)."""
    return sensitivity_entry(
        tech, DeviceVariant(n_index=18, impurity_e=-1.0),
        DeviceVariant(n_index=18, impurity_e=+1.0),
        nominal_metrics, 0.4, 0.13)


class TestCombinedWorstCase:
    def test_static_power_multiples(self, worst_entry):
        """Paper: worst case static power +371-684% (we require > 2.5x)."""
        assert worst_entry.static_power_pct[1] > 150.0

    def test_width_dominates_over_impurity(self, tech, nominal_metrics,
                                           worst_entry):
        """"The delay, power, and noise margins ... are dominated by
        variations in GNR width and exacerbated by charge impurities":
        the combined static-power blow-up is width-class (hundreds of
        percent), far beyond anything impurities alone produce."""
        impurity_only = sensitivity_entry(
            tech, DeviceVariant(impurity_e=-1.0),
            DeviceVariant(impurity_e=+1.0), nominal_metrics, 0.4, 0.13)
        assert (worst_entry.static_power_pct[1]
                > 3.0 * abs(impurity_only.static_power_pct[1]))

    def test_snm_collapse_with_mismatch(self, tech, nominal_metrics):
        """Maximum n/p asymmetry (n: 9/+q strongest vs p: 18/-q weakest
        after mirroring) drives the noise margin toward zero."""
        entry = sensitivity_entry(
            tech, DeviceVariant(n_index=9, impurity_e=+1.0),
            DeviceVariant(n_index=18, impurity_e=-1.0),
            nominal_metrics, 0.4, 0.13)
        assert entry.snm_pct[1] < -50.0

    def test_delay_worst_case_exceeds_width_only(self, tech,
                                                 nominal_metrics):
        """Table 4: the slow corner (both devices narrow + hurting
        impurities) degrades delay beyond the pure N=9 width case."""
        combined = sensitivity_entry(
            tech, DeviceVariant(n_index=9, impurity_e=-1.0),
            DeviceVariant(n_index=9, impurity_e=+1.0),
            nominal_metrics, 0.4, 0.13)
        width_only = sensitivity_entry(
            tech, DeviceVariant(n_index=9), DeviceVariant(n_index=9),
            nominal_metrics, 0.4, 0.13)
        assert combined.delay_pct[1] > width_only.delay_pct[1]
