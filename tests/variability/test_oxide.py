"""Tests for the oxide-thickness variation study."""

import pytest

from repro.variability.oxide import oxide_thickness_study, oxide_variant_geometry


class TestGeometryScaling:
    def test_natural_length_scales_sqrt(self, tech):
        g = oxide_variant_geometry(tech.geometry, 6.0)  # 4x thicker
        assert g.natural_length_nm == pytest.approx(
            2.0 * tech.geometry.natural_length_nm, rel=1e-9)

    def test_capacitance_drops_with_thickness(self, tech):
        thin = oxide_variant_geometry(tech.geometry, 1.2)
        thick = oxide_variant_geometry(tech.geometry, 2.1)
        assert (thin.insulator_capacitance_f_per_nm
                > thick.insulator_capacitance_f_per_nm)

    def test_validation(self, tech):
        with pytest.raises(ValueError):
            oxide_variant_geometry(tech.geometry, 0.0)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self, tech):
        # Two thicknesses around nominal keeps the test affordable; the
        # full sweep runs in the extension bench.
        return oxide_thickness_study(tech, thicknesses_nm=(1.5, 2.1))

    def test_nominal_thickness_is_reference(self, study):
        nominal, entries = study
        at_nominal = entries[0]
        assert at_nominal.oxide_thickness_nm == 1.5
        assert at_nominal.delay_pct == pytest.approx(0.0, abs=6.0)

    def test_thicker_oxide_less_leakage(self, study):
        """A longer natural length thickens the Schottky barriers:
        tunneling leakage drops with oxide thickness."""
        _, entries = study
        assert entries[1].static_power_pct < entries[0].static_power_pct

    def test_thicker_oxide_slower(self, study):
        """The same barrier thickening costs on-current -> delay."""
        _, entries = study
        assert entries[1].delay_pct > entries[0].delay_pct
