"""Tests for the memory yield / ECC model."""

import numpy as np
import pytest

from repro.variability.yield_model import (
    ECCAnalysis,
    cell_failure_probability,
    required_sec_words_per_data_word,
    sample_latch_snm,
)


class TestCellFailure:
    def test_fraction(self):
        snm = np.array([0.02, 0.05, 0.08, 0.10])
        assert cell_failure_probability(snm, 0.06) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cell_failure_probability(np.array([]), 0.05)


class TestECC:
    def test_hamming_parity_bits(self):
        assert ECCAnalysis(p_cell=1e-3, data_bits=64).parity_bits == 7
        assert ECCAnalysis(p_cell=1e-3, data_bits=8).parity_bits == 4

    def test_overhead(self):
        assert ECCAnalysis(p_cell=0.0, data_bits=64).overhead == \
            pytest.approx(7 / 64)

    def test_sec_beats_raw(self):
        ecc = ECCAnalysis(p_cell=1e-3, data_bits=64)
        assert ecc.word_failure_sec() < ecc.word_failure_raw()
        assert ecc.improvement_factor() > 10.0

    def test_perfect_cells(self):
        ecc = ECCAnalysis(p_cell=0.0)
        assert ecc.word_failure_raw() == 0.0
        assert ecc.word_failure_sec() == 0.0
        assert ecc.improvement_factor() == np.inf

    def test_quadratic_suppression(self):
        """SEC word failure ~ (n p)^2 / 2 for small p: dropping p by 10x
        drops the SEC failure by ~100x."""
        hi = ECCAnalysis(p_cell=1e-3).word_failure_sec()
        lo = ECCAnalysis(p_cell=1e-4).word_failure_sec()
        assert hi / lo == pytest.approx(100.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ECCAnalysis(p_cell=1.5)
        with pytest.raises(ValueError):
            ECCAnalysis(p_cell=0.1, data_bits=0)


class TestInterleaving:
    def test_deeper_interleave_for_worse_cells(self):
        k_good = required_sec_words_per_data_word(1e-4, 1e-9)
        k_bad = required_sec_words_per_data_word(3e-3, 1e-9)
        assert k_bad >= k_good

    def test_target_validated(self):
        with pytest.raises(ValueError):
            required_sec_words_per_data_word(1e-3, 0.0)


class TestLatchSampling:
    def test_samples_shape_and_range(self, tech):
        snm = sample_latch_snm(tech, n_cells=12, n_vtc_points=21)
        assert snm.shape == (12,)
        assert np.all(snm >= 0.0)
        assert np.all(snm < 0.2)

    def test_reproducible(self, tech):
        a = sample_latch_snm(tech, n_cells=6, seed=9, n_vtc_points=21)
        b = sample_latch_snm(tech, n_cells=6, seed=9, n_vtc_points=21)
        assert np.allclose(a, b)

    def test_variability_spreads_snm(self, tech):
        """Variant cells must show spread and a degraded tail vs the
        nominal cell SNM."""
        from repro.circuit.inverter import inverter_snm

        snm = sample_latch_snm(tech, n_cells=16, n_vtc_points=21)
        nominal = inverter_snm(*tech.inverter_tables(0.13), 0.4,
                               tech.params)
        assert np.std(snm) > 0.0
        assert snm.min() < nominal
