"""Tests for the edge-roughness study (small ensembles)."""

import numpy as np
import pytest

from repro.variability.edge_roughness import (
    effective_gap_widening_ev,
    localization_length_cells,
    roughness_ensemble,
    roughness_width_study,
)


class TestEnsemble:
    def test_zero_roughness_is_ideal(self):
        stats = roughness_ensemble(12, 0.0, n_cells=10, n_samples=2)
        assert stats.mean_transmission == pytest.approx(1.0, abs=1e-3)
        assert stats.std_transmission == pytest.approx(0.0, abs=1e-6)
        assert stats.mean_removed_atoms == 0.0

    def test_degradation_grows_with_probability(self):
        lo = roughness_ensemble(12, 0.02, n_cells=12, n_samples=6)
        hi = roughness_ensemble(12, 0.15, n_cells=12, n_samples=6)
        assert hi.mean_transmission < lo.mean_transmission
        assert hi.relative_degradation > lo.relative_degradation

    def test_reproducible_with_seed(self):
        a = roughness_ensemble(9, 0.1, n_cells=10, n_samples=4, seed=7)
        b = roughness_ensemble(9, 0.1, n_cells=10, n_samples=4, seed=7)
        assert np.allclose(a.samples, b.samples)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            roughness_ensemble(9, 0.1, n_samples=0)


class TestWidthStudy:
    def test_narrow_ribbons_hurt_more(self):
        """The central physical claim (Yoon & Guo): at equal roughness,
        narrower ribbons lose more transmission."""
        study = roughness_width_study(indices=(9, 18),
                                      probabilities=(0.1,),
                                      n_cells=16, n_samples=8)
        assert (study[(9, 0.1)].mean_transmission
                < study[(18, 0.1)].mean_transmission)

    def test_grid_keys(self):
        study = roughness_width_study(indices=(9,), probabilities=(0.05,),
                                      n_cells=8, n_samples=2)
        assert set(study) == {(9, 0.05)}


class TestLocalization:
    def test_finite_localization_length(self):
        xi, means = localization_length_cells(
            9, 0.15, lengths_cells=(6, 12, 18), n_samples=6)
        assert 0.0 < xi < 1000.0
        # <ln T> decreases with length.
        values = list(means.values())
        assert values[0] > values[-1]

    def test_pristine_is_unlocalized(self):
        xi, _ = localization_length_cells(9, 0.0,
                                          lengths_cells=(6, 12),
                                          n_samples=1)
        assert xi == np.inf or xi > 1e4


class TestTransportGap:
    def test_roughness_widens_transport_gap(self):
        widening = effective_gap_widening_ev(9, 0.12, n_cells=16,
                                             n_samples=4)
        assert widening > 0.02

    def test_clean_ribbon_no_widening(self):
        widening = effective_gap_widening_ev(9, 0.0, n_cells=16,
                                             n_samples=1)
        assert widening < 0.03
