"""Tests for the latch butterfly study (Fig. 7 mechanics)."""

import pytest

from repro.variability.latch_study import latch_case, latch_variability_study
from repro.variability.variants import DeviceVariant


@pytest.fixture(scope="module")
def cases(tech):
    return latch_variability_study(tech)


class TestFig7Cases:
    def test_three_cases_in_order(self, cases):
        assert [c.label for c in cases] == [
            "nominal", "single GNR affected", "all GNRs affected"]

    def test_nominal_snm_positive(self, cases):
        assert cases[0].snm_v > 0.03

    def test_snm_degrades_with_severity(self, cases):
        nominal, single, all_ = cases
        assert single.snm_v < nominal.snm_v
        assert all_.snm_v <= single.snm_v

    def test_worst_case_near_zero_snm(self, cases):
        """"one eye of the butterfly curve collapses to reduce the noise
        margin to near-zero"."""
        assert cases[-1].snm_v < 0.35 * cases[0].snm_v

    def test_static_power_multiplies(self, cases):
        """"the static power consumption of latches can increase by over
        5X in the worst case" - our N=18 leaks somewhat less relative to
        nominal, so we require > 2x with the same direction."""
        assert (cases[-1].static_power_w
                > 2.0 * cases[0].static_power_w)

    def test_butterfly_data_attached(self, cases):
        for c in cases:
            assert c.butterfly.v_in.size > 10


class TestSingleCase:
    def test_custom_variant(self, tech):
        case = latch_case(tech, "custom", DeviceVariant(n_index=9),
                          DeviceVariant(n_index=9), 4, 0.4, 0.13)
        assert case.label == "custom"
        assert case.snm_v >= 0.0
        assert case.static_power_w > 0.0
