"""Tests for the ring-oscillator Monte Carlo (Fig. 6 mechanics)."""

import numpy as np
import pytest

from repro.variability.montecarlo import run_ring_oscillator_monte_carlo


class TestDegenerateDistribution:
    def test_all_nominal_levels_zero_spread(self, tech):
        """Collapsing all levels to nominal must reproduce the nominal
        oscillator exactly with zero variance."""
        result = run_ring_oscillator_monte_carlo(
            tech, n_samples=20, width_levels=(12, 12, 12),
            charge_levels=(0.0, 0.0, 0.0))
        assert np.allclose(result.frequencies_hz,
                           result.nominal_frequency_hz)
        assert result.mean_frequency_shift == pytest.approx(0.0, abs=1e-12)
        assert result.mean_static_power_shift == pytest.approx(0.0,
                                                               abs=1e-12)


class TestRealDistribution:
    @pytest.fixture(scope="class")
    def result(self, tech):
        return run_ring_oscillator_monte_carlo(tech, n_samples=250,
                                               seed=2008)

    def test_shapes(self, result):
        assert result.frequencies_hz.shape == (250,)
        assert result.static_power_w.shape == (250,)

    def test_frequency_mean_degrades(self, result):
        """Paper: "the mean value of frequency decreases by 10% from the
        nominal value" (we require a degradation of 3-30%)."""
        assert -0.30 < result.mean_frequency_shift < -0.02

    def test_static_power_mean_increases(self, result):
        """Paper: "the mean value of static power increases by 23%"
        (we require +8-120%)."""
        assert 0.05 < result.mean_static_power_shift < 1.5

    def test_dynamic_power_mean_tracks_frequency(self, result):
        """Paper: "the mean value of dynamic power remains unchanged".

        In this reproduction dynamic power is proportional to the
        oscillation frequency (the switched energy per cycle is what
        stays fixed), so its mean shift rides the ~15% frequency
        degradation.  The population mean of the shift is ~-0.15, so we
        bound it with real margin and pin the invariant that holds
        tightly: P_dyn shifts with f, i.e. energy/cycle is unchanged.
        """
        assert abs(result.mean_dynamic_power_shift) < 0.25
        assert (result.mean_dynamic_power_shift
                == pytest.approx(result.mean_frequency_shift, abs=0.05))

    def test_distributions_have_spread(self, result):
        assert np.std(result.frequencies_hz) > 0.0
        assert np.std(result.static_power_w) > 0.0

    def test_reproducible(self, tech, result):
        again = run_ring_oscillator_monte_carlo(tech, n_samples=250,
                                                seed=2008)
        assert np.allclose(again.frequencies_hz, result.frequencies_hz)

    def test_variant_counts_cover_levels(self, result):
        # ribbon granularity: 2 devices x 15 stages x 4 ribbons per sample.
        assert sum(result.variant_counts.values()) == 2 * 15 * 4 * 250
        assert any("N=9" in k for k in result.variant_counts)

    def test_device_granularity_spreads_more(self, tech, result):
        """Whole-device draws remove the array averaging: the frequency
        distribution must widen and its mean shift grow."""
        device = run_ring_oscillator_monte_carlo(
            tech, n_samples=250, seed=2008, granularity="device")
        assert (np.std(device.frequencies_hz)
                > np.std(result.frequencies_hz))
        assert device.mean_frequency_shift < result.mean_frequency_shift
