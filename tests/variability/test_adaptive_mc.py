"""Prefix property and stopping rule of the adaptive Monte Carlo."""

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError
from repro.runtime import faults
from repro.variability.adaptive import (
    run_ring_oscillator_monte_carlo_adaptive,
)
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo

SAMPLE_ARRAYS = ("frequencies_hz", "dynamic_power_w", "static_power_w")


@pytest.fixture(autouse=True)
def _disarm():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


class TestPrefixProperty:
    def test_early_stop_is_prefix_of_fixed_run(self, tech):
        """Stopping at n < n_max yields bit-for-bit the first n samples
        of the fixed-count run with the same seed."""
        fixed = run_ring_oscillator_monte_carlo(tech, n_samples=60)
        adaptive = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=60, target_ci=0.4, batch=10)
        assert adaptive.converged
        assert 20 <= adaptive.n_used < 60
        n = adaptive.n_used
        for name in SAMPLE_ARRAYS:
            assert np.array_equal(getattr(adaptive, name),
                                  getattr(fixed, name)[:n],
                                  equal_nan=True), name
        assert (adaptive.nominal_frequency_hz
                == fixed.nominal_frequency_hz)

    def test_unconverged_budget_degenerates_to_fixed_run(self, tech):
        """A target the budget cannot certify runs to n_max and equals
        the fixed-count study bitwise."""
        fixed = run_ring_oscillator_monte_carlo(tech, n_samples=40)
        adaptive = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=40, target_ci=0.01, batch=10)
        assert not adaptive.converged
        assert adaptive.n_used == 40
        for name in SAMPLE_ARRAYS:
            assert np.array_equal(getattr(adaptive, name),
                                  getattr(fixed, name),
                                  equal_nan=True), name
        assert adaptive.variant_counts == fixed.variant_counts
        # budget-exhausted half-widths are reported, not stale ones
        assert adaptive.ci_halfwidths["freq_sigma"] > 0.01

    def test_serial_equals_parallel_bitwise(self, tech):
        serial = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=40, target_ci=0.3, batch=10, workers=1)
        parallel = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=40, target_ci=0.3, batch=10, workers=2)
        assert serial.n_used == parallel.n_used
        assert serial.converged == parallel.converged
        for name in SAMPLE_ARRAYS:
            assert np.array_equal(getattr(serial, name),
                                  getattr(parallel, name),
                                  equal_nan=True), name


class TestStoppingRule:
    def test_halfwidths_shrink_with_samples(self, tech):
        small = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=20, target_ci=0.01, batch=10)
        large = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=80, target_ci=0.01, batch=20)
        assert (large.ci_halfwidths["freq_sigma"]
                < small.ci_halfwidths["freq_sigma"])

    def test_counters(self, tech):
        obs.enable()
        result = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=60, target_ci=0.4, batch=10)
        counters = obs.snapshot()["counters"]
        assert counters["adaptive.mc_samples_used"] == result.n_used
        assert counters["adaptive.solves_saved"] == (60 - result.n_used)

    def test_validation(self, tech):
        with pytest.raises(ValueError, match="target_ci"):
            run_ring_oscillator_monte_carlo_adaptive(tech, target_ci=1.5)
        with pytest.raises(ValueError, match="granularity"):
            run_ring_oscillator_monte_carlo_adaptive(
                tech, granularity="wafer")


class TestCheckpointResume:
    def test_kill_then_resume_bitwise(self, tech):
        baseline = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=40, target_ci=0.01, batch=10)
        faults.enable("checkpoint@1")
        with pytest.raises(CheckpointError):
            run_ring_oscillator_monte_carlo_adaptive(
                tech, n_max=40, target_ci=0.01, batch=10, checkpoint=1)
        faults.disable()
        obs.enable()
        resumed = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=40, target_ci=0.01, batch=10, checkpoint=1,
            resume=True)
        assert resumed.n_used == baseline.n_used
        for name in SAMPLE_ARRAYS:
            assert np.array_equal(getattr(resumed, name),
                                  getattr(baseline, name),
                                  equal_nan=True), name
        assert resumed.ci_halfwidths == baseline.ci_halfwidths
        counters = obs.snapshot()["counters"]
        assert counters["resilience.checkpoint_resumes"] == 1
