"""Tests for device variants and array composition."""

import numpy as np
import pytest

from repro.variability.variants import (
    DeviceVariant,
    NOMINAL_VARIANT,
    variant_array_table,
    variant_geometry,
    variant_ribbon_table,
)


class TestVariantGeometry:
    def test_nominal_is_clean(self):
        g = variant_geometry(NOMINAL_VARIANT, +1)
        assert g.n_index == 12
        assert g.impurity is None

    def test_width_variant(self):
        g = variant_geometry(DeviceVariant(n_index=9), +1)
        assert g.n_index == 9

    def test_p_device_mirrors_impurity(self):
        """"a +q charge has the same effect on a pGNRFET device as a -q
        charge has on an nGNRFET device"."""
        v = DeviceVariant(impurity_e=+1.0)
        g_n = variant_geometry(v, +1)
        g_p = variant_geometry(v, -1)
        assert g_n.impurity.charge_e == +1.0
        assert g_p.impurity.charge_e == -1.0

    def test_labels(self):
        assert DeviceVariant().label() == "N=12"
        assert DeviceVariant(9, -2.0).label() == "N=9,-2q"


class TestArrayComposition:
    def test_zero_affected_is_pure_nominal(self, tech):
        nominal = variant_ribbon_table(NOMINAL_VARIANT, +1, tech.geometry)
        arr = variant_array_table(DeviceVariant(n_index=9), +1, 0, 0.0,
                                  4, tech.geometry)
        assert arr.current(0.5, 0.5) == pytest.approx(
            4 * nominal.current(0.5, 0.5), rel=1e-12)

    def test_one_vs_all_monotone(self, tech):
        """On-current interpolates between nominal and variant as more
        ribbons are affected (N=9 has lower drive than N=12)."""
        currents = []
        for k in (0, 1, 4):
            arr = variant_array_table(DeviceVariant(n_index=9), +1, k,
                                      0.0, 4, tech.geometry)
            currents.append(arr.current(0.7, 0.5))
        assert currents[0] > currents[1] > currents[2]

    def test_shared_gate_offset(self, tech):
        arr = variant_array_table(DeviceVariant(n_index=9), +1, 2, 0.17,
                                  4, tech.geometry)
        assert arr.gate_offset_v == 0.17

    def test_rejects_bad_count(self, tech):
        with pytest.raises(ValueError):
            variant_array_table(NOMINAL_VARIANT, +1, 5, 0.0, 4,
                                tech.geometry)

    def test_small_gap_variant_leaks_more(self, tech):
        """A single N=18 ribbon already dominates array leakage (paper:
        "even single GNR variations ... can increase static power
        consumption by 3X")."""
        offset = tech.gate_offset_for_vt(0.13)
        nom = variant_array_table(NOMINAL_VARIANT, +1, 0, offset, 4,
                                  tech.geometry)
        one18 = variant_array_table(DeviceVariant(n_index=18), +1, 1,
                                    offset, 4, tech.geometry)
        # Off-state leakage at V_GS = 0, V_DS = 0.4.
        assert one18.current(0.0, 0.4) > 1.5 * nom.current(0.0, 0.4)
