"""Every intra-repo markdown link must point at an existing file.

Scans the top-level docs (README, DESIGN, EXPERIMENTS, ROADMAP,
CHANGES) plus everything under docs/ for inline links and verifies the
relative targets resolve — the check CI's docs job runs, so a renamed
file or a typo'd cross-link fails before it ships.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    files.extend(sorted((REPO_ROOT / "docs" / "experiments").glob("*.md")))
    return files


def _intra_repo_targets(path: Path) -> list[tuple[str, Path]]:
    """(raw link, resolved path) for every relative link in ``path``."""
    out = []
    inside_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for raw in _LINK_RE.findall(line):
            if raw.startswith(_EXTERNAL) or raw.startswith("#"):
                continue
            target = raw.split("#", 1)[0]
            if not target:
                continue
            out.append((raw, (path.parent / target).resolve()))
    return out


def test_scan_covers_the_new_docs_tree():
    names = {p.name for p in _markdown_files()}
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md", "architecture.md",
            "observability.md", "cli.md",
            "experiments-workflow.md", "index.md"} <= names
    # The generated per-experiment pages are scanned too.
    assert sum(1 for p in _markdown_files()
               if p.parent.name == "experiments") >= 15


@pytest.mark.parametrize("md_file", _markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(md_file):
    broken = [raw for raw, resolved in _intra_repo_targets(md_file)
              if not resolved.exists()]
    assert not broken, (
        f"{md_file.relative_to(REPO_ROOT)} has broken intra-repo "
        f"link(s): {broken}")


def test_docs_pages_are_cross_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/observability.md",
                 "docs/cli.md", "docs/experiments-workflow.md",
                 "docs/experiments/index.md"):
        assert page in readme, f"README.md does not link {page}"


def test_generated_pages_are_cross_linked_from_architecture():
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "experiments/index.md" in architecture
