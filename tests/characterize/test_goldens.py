"""Golden IO: schema validation, NaN round-trip, bitwise re-bless."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.characterize.goldens import (
    GOLDEN_SCHEMA,
    bless_golden,
    golden_path,
    load_golden,
    load_goldens,
)
from repro.characterize.specs import SPECS
from repro.errors import GoldenError

EID = "fig2"
METRICS = {"vt_zero_offset_v": 0.295, "vt_offset02_v": float("nan")}
COMMITTED = Path(__file__).resolve().parents[2] / "goldens"


class TestBlessAndLoad:
    def test_round_trip_restores_nan(self, tmp_path):
        bless_golden(EID, "fast", METRICS, reason="seed", root=tmp_path)
        golden = load_golden(EID, root=tmp_path)
        block = golden["modes"]["fast"]
        assert block["vt_zero_offset_v"] == 0.295
        assert math.isnan(block["vt_offset02_v"])
        assert golden["reason"] == "seed"

    def test_nan_serializes_as_null(self, tmp_path):
        path = bless_golden(EID, "fast", METRICS, reason="seed",
                            root=tmp_path)
        raw = json.loads(path.read_text())
        assert raw["schema"] == GOLDEN_SCHEMA
        assert raw["modes"]["fast"]["vt_offset02_v"] is None

    def test_re_bless_is_bitwise_stable(self, tmp_path):
        path = bless_golden(EID, "fast", METRICS, reason="seed",
                            root=tmp_path)
        first = path.read_bytes()
        bless_golden(EID, "fast", dict(METRICS), reason="seed",
                     root=tmp_path)
        assert path.read_bytes() == first

    def test_blessing_one_mode_preserves_the_other(self, tmp_path):
        bless_golden(EID, "fast", {"vt_zero_offset_v": 1.0},
                     reason="a", root=tmp_path)
        bless_golden(EID, "full", {"vt_zero_offset_v": 2.0},
                     reason="b", root=tmp_path)
        golden = load_golden(EID, root=tmp_path)
        assert golden["modes"]["fast"]["vt_zero_offset_v"] == 1.0
        assert golden["modes"]["full"]["vt_zero_offset_v"] == 2.0
        assert golden["reason"] == "b"  # latest bless wins

    def test_no_leftover_temp_file(self, tmp_path):
        bless_golden(EID, "fast", METRICS, reason="seed", root=tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [f"{EID}.json"]


class TestValidation:
    def test_reason_is_required(self, tmp_path):
        with pytest.raises(GoldenError, match="reason"):
            bless_golden(EID, "fast", METRICS, reason="  ",
                         root=tmp_path)

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(GoldenError, match="unknown experiment"):
            bless_golden("fig99", "fast", {}, reason="r", root=tmp_path)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(GoldenError, match="unknown mode"):
            bless_golden(EID, "quick", METRICS, reason="r",
                         root=tmp_path)

    def test_undeclared_metric_rejected(self, tmp_path):
        with pytest.raises(GoldenError, match="not.*declared"):
            bless_golden(EID, "fast", {"bogus_metric": 1.0},
                         reason="r", root=tmp_path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GoldenError, match="no golden"):
            load_golden(EID, root=tmp_path)

    def test_wrong_schema_rejected(self, tmp_path):
        golden_path(EID, tmp_path).write_text(
            json.dumps({"schema": "repro-golden/999",
                        "experiment": EID, "modes": {"fast": {}}}))
        with pytest.raises(GoldenError, match="schema"):
            load_golden(EID, root=tmp_path)

    def test_experiment_mismatch_rejected(self, tmp_path):
        golden_path(EID, tmp_path).write_text(
            json.dumps({"schema": GOLDEN_SCHEMA, "experiment": "fig3",
                        "modes": {"fast": {}}}))
        with pytest.raises(GoldenError, match="claims experiment"):
            load_golden(EID, root=tmp_path)

    def test_non_numeric_metric_rejected(self, tmp_path):
        golden_path(EID, tmp_path).write_text(
            json.dumps({"schema": GOLDEN_SCHEMA, "experiment": EID,
                        "modes": {"fast": {"vt_zero_offset_v": "x"}}}))
        with pytest.raises(GoldenError, match="expected a number"):
            load_golden(EID, root=tmp_path)

    def test_load_goldens_skips_missing(self, tmp_path):
        bless_golden(EID, "fast", METRICS, reason="r", root=tmp_path)
        loaded = load_goldens(root=tmp_path)
        assert set(loaded) == {EID}


class TestCommittedGoldens:
    """The goldens/ directory in the repository itself."""

    def test_every_experiment_has_a_committed_golden(self):
        loaded = load_goldens(root=COMMITTED)
        assert set(loaded) == set(SPECS)

    def test_committed_goldens_carry_fast_and_full(self):
        for eid, golden in load_goldens(root=COMMITTED).items():
            assert set(golden["modes"]) == {"fast", "full"}, eid
            assert golden["reason"]

    def test_committed_metrics_match_spec_declarations(self):
        for eid, golden in load_goldens(root=COMMITTED).items():
            declared = set(SPECS[eid].metric_names())
            for mode, block in golden["modes"].items():
                assert set(block) == declared, (eid, mode)
