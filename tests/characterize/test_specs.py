"""Spec registry: alignment with the experiment registry, extractors."""

from __future__ import annotations

import math
from pathlib import Path

from repro.characterize.specs import SPECS, extract_ext_roughness
from repro.reporting.experiments import EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_ids_match_experiment_registry_in_order(self):
        assert list(SPECS) == list(EXPERIMENTS)

    def test_spec_ids_self_consistent(self):
        for eid, spec in SPECS.items():
            assert spec.id == eid

    def test_metric_names_unique_within_experiment(self):
        for spec in SPECS.values():
            names = spec.metric_names()
            assert len(names) == len(set(names)), spec.id

    def test_every_experiment_declares_metrics(self):
        for spec in SPECS.values():
            assert len(spec.metrics) >= 3, spec.id

    def test_benchmark_files_exist(self):
        for spec in SPECS.values():
            assert (REPO_ROOT / spec.benchmark).is_file(), spec.benchmark

    def test_metric_lookup(self):
        spec = SPECS["fig2"]
        assert spec.metric("vt_zero_offset_v").unit == "V"
        try:
            spec.metric("nope")
        except KeyError as exc:
            assert "fig2" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")

    def test_tolerances_are_sane(self):
        for spec in SPECS.values():
            for metric in spec.metrics:
                assert metric.rel_tol >= 0.0
                assert metric.abs_tol >= 0.0
                assert metric.rel_tol + metric.abs_tol > 0.0, (
                    spec.id, metric.name)


class TestExtractors:
    def test_missing_grid_cell_becomes_nan(self):
        fom = extract_ext_roughness({"study": {}})
        assert all(math.isnan(v) for v in fom.values())

    def test_extractor_names_are_importable_from_benchmarks(self):
        # The hoisted single-implementation contract: every bench file
        # imports its figure-of-merit extractor from characterize.specs.
        for spec in SPECS.values():
            source = (REPO_ROOT / spec.benchmark).read_text(
                encoding="utf-8")
            assert spec.extract.__name__ in source, (
                f"{spec.benchmark} does not use "
                f"{spec.extract.__name__}")
