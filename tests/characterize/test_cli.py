"""CLI exit-code contract (0 clean / 1 drift / 2 usage) and reports.

Experiment execution is stubbed through ``runner.measure`` so the
contract tests stay in milliseconds; the real physics is covered by the
benchmarks and the committed-golden tests.
"""

from __future__ import annotations

import json

import pytest

from repro.characterize import cli, runner
from repro.characterize.goldens import bless_golden, load_golden
from repro.characterize.markdown import write_docs
from repro.characterize.runner import CharacterizationRun, resolve_ids
from repro.characterize.specs import SPECS
from repro.errors import GoldenError


@pytest.fixture
def sandbox(tmp_path, monkeypatch):
    """Run the CLI against a temp repo root with one blessed golden."""
    monkeypatch.chdir(tmp_path)
    bless_golden("fig2", "fast",
                 {name: 1.0 for name in SPECS["fig2"].metric_names()},
                 reason="seed")
    return tmp_path


def _stub_measure(monkeypatch, value: float):
    def fake_measure(ids, fast=False, workers=None, scheduler=None):
        measured = {eid: {name: value
                          for name in SPECS[eid].metric_names()}
                    for eid in ids}
        return measured, {eid: 0.0 for eid in ids}
    monkeypatch.setattr(runner, "measure", fake_measure)


class TestUsageErrors:
    def test_update_without_reason_is_usage_error(self, capsys):
        assert cli.main(["--update"]) == 2
        assert "--reason" in capsys.readouterr().err

    def test_update_with_docs_is_usage_error(self, capsys):
        assert cli.main(["--update", "--docs", "--reason", "r"]) == 2

    def test_unknown_only_id_is_usage_error(self, capsys):
        assert cli.main(["--check", "--only", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_resolve_ids_rejects_unknown(self):
        with pytest.raises(GoldenError):
            resolve_ids("fig2,bogus")
        assert resolve_ids(None) == list(SPECS)
        assert resolve_ids("table1, fig2") == ["table1", "fig2"]


class TestCheck:
    def test_matching_run_exits_zero(self, sandbox, monkeypatch, capsys):
        _stub_measure(monkeypatch, 1.0)
        assert cli.main(["--check", "--fast", "--only", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2: ok" in out
        assert "1/1 experiment(s) pass" in out

    def test_violation_exits_one_with_per_metric_report(
            self, sandbox, monkeypatch, capsys):
        _stub_measure(monkeypatch, 2.0)  # way past every tolerance
        assert cli.main(["--check", "--fast", "--only", "fig2"]) == 1
        out = capsys.readouterr().out
        assert "fig2: FAIL" in out
        assert "[FAIL]" in out
        assert "allowance" in out

    def test_unblessed_experiment_exits_one(self, sandbox, monkeypatch,
                                            capsys):
        _stub_measure(monkeypatch, 1.0)
        assert cli.main(["--check", "--fast", "--only", "table1"]) == 1
        assert "UNBLESSED" in capsys.readouterr().out

    def test_json_report_schema(self, sandbox, monkeypatch, capsys):
        _stub_measure(monkeypatch, 1.0)
        assert cli.main(["--check", "--fast", "--only", "fig2",
                         "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-characterize-report/1"
        assert doc["ok"] is True
        assert doc["experiments"]["fig2"]["status"] == "pass"
        names = {m["name"]
                 for m in doc["experiments"]["fig2"]["metrics"]}
        assert names == set(SPECS["fig2"].metric_names())


class TestUpdate:
    def test_update_blesses_and_writes_docs(self, sandbox, monkeypatch):
        _stub_measure(monkeypatch, 3.0)
        assert cli.main(["--update", "--fast", "--only", "fig2",
                         "--reason", "recalibrated"]) == 0
        golden = load_golden("fig2")
        assert golden["reason"] == "recalibrated"
        assert golden["modes"]["fast"]["vt_zero_offset_v"] == 3.0
        assert (sandbox / "docs" / "experiments" / "fig2.md").is_file()
        assert (sandbox / "docs" / "experiments" / "index.md").is_file()

    def test_update_round_trip_is_bitwise_stable(self, sandbox,
                                                 monkeypatch):
        _stub_measure(monkeypatch, 1.0)
        args = ["--update", "--fast", "--only", "fig2",
                "--reason", "seed"]
        assert cli.main(args) == 0
        golden_bytes = (sandbox / "goldens" / "fig2.json").read_bytes()
        page_bytes = (sandbox / "docs" / "experiments"
                      / "fig2.md").read_bytes()
        assert cli.main(args) == 0
        assert (sandbox / "goldens"
                / "fig2.json").read_bytes() == golden_bytes
        assert (sandbox / "docs" / "experiments"
                / "fig2.md").read_bytes() == page_bytes


class TestDocs:
    def test_docs_writes_pages(self, sandbox, capsys):
        assert cli.main(["--docs"]) == 0
        pages = list((sandbox / "docs" / "experiments").glob("*.md"))
        assert len(pages) == len(SPECS) + 1

    def test_docs_check_clean_after_write(self, sandbox):
        assert cli.main(["--docs"]) == 0
        assert cli.main(["--docs", "--check"]) == 0

    def test_docs_check_flags_drift(self, sandbox, capsys):
        assert cli.main(["--docs"]) == 0
        page = sandbox / "docs" / "experiments" / "fig2.md"
        page.write_text(page.read_text() + "tampered\n")
        assert cli.main(["--docs", "--check"]) == 1
        assert "drift" in capsys.readouterr().out


class TestRunDataclass:
    def test_failing_ids_ordering(self):
        from repro.characterize.diffing import ExperimentDiff
        diffs = {
            "a": ExperimentDiff("a", "fast", "pass", ()),
            "b": ExperimentDiff("b", "fast", "fail", ()),
            "c": ExperimentDiff("c", "fast", "unblessed", ()),
        }
        run = CharacterizationRun(mode="fast", measured={}, diffs=diffs,
                                  timings_s={}, wall_s=0.0)
        assert run.failing_ids() == ["b", "c"]
        assert not run.ok
