"""Tests for the append-only benchmark trajectory log."""

import json

from repro.characterize.trajectory import (
    MAX_ENTRIES,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    read_trajectory,
    trajectory_entry,
)


class TestEntry:
    def test_schema_and_fields(self):
        entry = trajectory_entry("characterize", "fast", True, 12.345678,
                                 {"n_fail": 0})
        assert entry["schema"] == TRAJECTORY_SCHEMA
        assert entry["source"] == "characterize"
        assert entry["mode"] == "fast"
        assert entry["ok"] is True
        assert entry["wall_s"] == 12.346
        assert entry["metrics"] == {"n_fail": 0}
        # ISO-8601 UTC, second resolution
        assert entry["ts"].endswith("Z") and "T" in entry["ts"]


class TestAppendAndPrune:
    def test_appends_one_line_per_entry(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        for k in range(3):
            append_trajectory(
                trajectory_entry("bench", "full", True, k, {"k": k}), path)
        entries = read_trajectory(path)
        assert [e["metrics"]["k"] for e in entries] == [0, 1, 2]

    def test_prunes_to_max_entries(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        for k in range(MAX_ENTRIES + 25):
            append_trajectory({"schema": TRAJECTORY_SCHEMA, "k": k}, path)
        entries = read_trajectory(path)
        assert len(entries) == MAX_ENTRIES
        assert entries[0]["k"] == 25      # oldest dropped
        assert entries[-1]["k"] == MAX_ENTRIES + 24

    def test_unparseable_lines_survive_appends(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        path.write_text("not json at all\n")
        append_trajectory({"schema": TRAJECTORY_SCHEMA, "k": 1}, path)
        raw = path.read_text().splitlines()
        assert raw[0] == "not json at all"
        assert json.loads(raw[1])["k"] == 1
        # ...but the reader skips them
        assert [e["k"] for e in read_trajectory(path)] == [1]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_trajectory(tmp_path / "absent.jsonl") == []
