"""Markdown renderer: determinism, glyphs, drift detection."""

from __future__ import annotations

from pathlib import Path

from repro.characterize.goldens import bless_golden
from repro.characterize.markdown import (
    GLYPH_BLESSED,
    GLYPH_QUARANTINED,
    GLYPH_UNBLESSED,
    docs_drift,
    fmt_value,
    render_all,
    render_index,
    render_page,
    write_docs,
)
from repro.characterize.specs import SPECS

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestFormatting:
    def test_nan_renders_as_dash(self):
        assert fmt_value(float("nan")) == "—"
        assert fmt_value(None) == "—"

    def test_plain_values(self):
        assert fmt_value(0.295) == "0.295"
        assert fmt_value(0) == "0"
        assert fmt_value(2.7e9) == "2.7e+09"


class TestRenderPage:
    def test_unblessed_page_carries_glyph(self):
        page = render_page(SPECS["fig2"], None)
        assert GLYPH_UNBLESSED in page
        assert "No golden blessed yet" in page

    def test_blessed_page_shows_values_and_reason(self, tmp_path):
        bless_golden("fig2", "fast", {"vt_zero_offset_v": 0.295},
                     reason="why", root=tmp_path)
        from repro.characterize.goldens import load_golden
        page = render_page(SPECS["fig2"], load_golden("fig2",
                                                      root=tmp_path))
        assert "0.295" in page
        assert "*why*" in page
        assert GLYPH_BLESSED in page
        # Metrics absent from the golden render as quarantined.
        assert GLYPH_QUARANTINED in page

    def test_render_is_deterministic(self, tmp_path):
        bless_golden("fig2", "fast", {"vt_zero_offset_v": 0.295},
                     reason="why", root=tmp_path)
        first = render_all(golden_root=tmp_path)
        second = render_all(golden_root=tmp_path)
        assert first == second

    def test_renders_one_page_per_experiment_plus_index(self):
        pages = render_all(golden_root=REPO_ROOT / "goldens")
        names = {p.name for p in pages}
        assert names == {f"{eid}.md" for eid in SPECS} | {"index.md"}


class TestIndex:
    def test_index_links_every_experiment(self):
        index = render_index({})
        for eid in SPECS:
            assert f"[{eid}]({eid}.md)" in index


class TestDriftCheck:
    def test_written_docs_have_no_drift(self, tmp_path):
        golden_root = tmp_path / "goldens"
        docs_root = tmp_path / "docs"
        bless_golden("fig2", "fast", {"vt_zero_offset_v": 0.295},
                     reason="r", root=golden_root)
        write_docs(golden_root=golden_root, docs_root=docs_root)
        assert docs_drift(golden_root=golden_root,
                          docs_root=docs_root) == []

    def test_edited_page_is_flagged(self, tmp_path):
        golden_root = tmp_path / "goldens"
        docs_root = tmp_path / "docs"
        write_docs(golden_root=golden_root, docs_root=docs_root)
        page = docs_root / "fig2.md"
        page.write_text(page.read_text() + "edited\n")
        drifted = docs_drift(golden_root=golden_root, docs_root=docs_root)
        assert drifted == [page]

    def test_missing_page_is_flagged(self, tmp_path):
        golden_root = tmp_path / "goldens"
        docs_root = tmp_path / "docs"
        write_docs(golden_root=golden_root, docs_root=docs_root)
        (docs_root / "index.md").unlink()
        drifted = docs_drift(golden_root=golden_root, docs_root=docs_root)
        assert drifted == [docs_root / "index.md"]

    def test_committed_pages_match_regeneration(self):
        # The acceptance-criterion check, in-process: committed
        # docs/experiments/ must be bitwise identical to a re-render.
        drifted = docs_drift(golden_root=REPO_ROOT / "goldens",
                             docs_root=REPO_ROOT / "docs" / "experiments")
        assert drifted == []
