"""Diff engine: tolerance edges, NaN semantics, metric-set mismatches."""

from __future__ import annotations

import math

from repro.characterize.diffing import diff_experiment, diff_metric
from repro.characterize.specs import ExperimentSpec, MetricSpec

NAN = float("nan")


def _metric(rel=0.05, abs_=0.0, name="m"):
    return MetricSpec(name=name, description="d", unit="u",
                      rel_tol=rel, abs_tol=abs_)


def _spec(*metrics):
    return ExperimentSpec(id="x", title="t", benchmark="b", runner="r",
                          metrics=metrics, extract=lambda data: {})


def _golden(mode="fast", **values):
    return {"experiment": "x", "reason": "", "modes": {mode: values}}


class TestAllowance:
    def test_combines_abs_and_rel(self):
        metric = _metric(rel=0.1, abs_=0.5)
        assert metric.allowance(10.0) == 0.5 + 1.0
        assert metric.allowance(-10.0) == 0.5 + 1.0  # |golden|

    def test_zero_golden_leaves_abs_floor(self):
        assert _metric(rel=0.1, abs_=0.25).allowance(0.0) == 0.25


class TestMetricDiff:
    def test_drift_exactly_at_allowance_passes(self):
        metric = _metric(rel=0.0, abs_=0.5)
        assert diff_metric(metric, 10.5, 10.0).status == "pass"

    def test_drift_just_over_allowance_fails(self):
        metric = _metric(rel=0.0, abs_=0.5)
        diff = diff_metric(metric, 10.5000001, 10.0)
        assert diff.status == "fail"
        assert diff.margin < 0.0

    def test_relative_edge_scales_with_golden(self):
        metric = _metric(rel=0.1, abs_=0.0)
        assert diff_metric(metric, 109.9, 100.0).ok
        assert not diff_metric(metric, 110.1, 100.0).ok

    def test_negative_golden_uses_magnitude(self):
        metric = _metric(rel=0.1, abs_=0.0)
        assert diff_metric(metric, -95.0, -100.0).ok
        assert not diff_metric(metric, -89.0, -100.0).ok

    def test_both_nan_is_agreement(self):
        diff = diff_metric(_metric(), NAN, NAN)
        assert diff.status == "pass"
        assert math.isnan(diff.margin)

    def test_nan_on_one_side_fails(self):
        assert diff_metric(_metric(), NAN, 1.0).status == "nan-mismatch"
        assert diff_metric(_metric(), 1.0, NAN).status == "nan-mismatch"


class TestExperimentDiff:
    def test_all_pass(self):
        spec = _spec(_metric(name="a", rel=0.1))
        diff = diff_experiment(spec, {"a": 1.04}, _golden(a=1.0), "fast")
        assert diff.ok and diff.status == "pass"
        assert diff.failures() == ()

    def test_one_failure_fails_experiment(self):
        spec = _spec(_metric(name="a", rel=0.01),
                     _metric(name="b", rel=0.5))
        diff = diff_experiment(spec, {"a": 2.0, "b": 1.0},
                               _golden(a=1.0, b=1.0), "fast")
        assert not diff.ok
        assert [f.name for f in diff.failures()] == ["a"]

    def test_missing_golden_is_unblessed(self):
        spec = _spec(_metric(name="a"))
        diff = diff_experiment(spec, {"a": 1.0}, None, "fast")
        assert diff.status == "unblessed" and not diff.ok

    def test_missing_mode_block_is_unblessed(self):
        spec = _spec(_metric(name="a"))
        diff = diff_experiment(spec, {"a": 1.0}, _golden(a=1.0), "full")
        assert diff.status == "unblessed"

    def test_metric_missing_from_run(self):
        spec = _spec(_metric(name="a"))
        diff = diff_experiment(spec, {}, _golden(a=1.0), "fast")
        assert [f.status for f in diff.failures()] == ["missing-metric"]

    def test_metric_new_in_run(self):
        spec = _spec(_metric(name="a"), _metric(name="b"))
        diff = diff_experiment(spec, {"a": 1.0, "b": 2.0},
                               _golden(a=1.0), "fast")
        assert [f.status for f in diff.failures()] == ["new-metric"]

    def test_stale_golden_key_flagged(self):
        spec = _spec(_metric(name="a"))
        diff = diff_experiment(spec, {"a": 1.0},
                               _golden(a=1.0, gone=3.0), "fast")
        assert [(f.name, f.status) for f in diff.failures()] == [
            ("gone", "missing-metric")]
