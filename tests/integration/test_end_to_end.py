"""Integration tests spanning the full stack.

Each test exercises a cross-layer path: atomistic bands -> device engine
-> lookup tables -> circuit simulation -> metrics, the way a user of the
library would chain them.
"""

import numpy as np
import pytest

from repro import (
    ChargeImpurity,
    DeviceTable,
    GNRFETGeometry,
    GNRFETTechnology,
    SBFETModel,
)
from repro.circuit import (
    characterize_inverter,
    estimate_ring_oscillator,
    inverter_snm,
)
from repro.device.tables import build_device_table


class TestBandGapToCircuitChain:
    def test_gap_controls_leakage_end_to_end(self, tech):
        """The atomistic band gap of the channel ribbon propagates all
        the way to inverter leakage: N=18 (small gap) leaks far more
        than N=9 (large gap) at the same fixed design point."""
        from repro.circuit.inverter import inverter_static_power_w
        from repro.variability.variants import DeviceVariant, variant_array_table

        offset = tech.gate_offset_for_vt(0.13)
        power = {}
        for n in (9, 18):
            t = variant_array_table(DeviceVariant(n_index=n), +1, 4,
                                    offset, 4, tech.geometry)
            power[n] = inverter_static_power_w(t, t, 0.4, tech.params)
        assert power[18] > 10.0 * power[9]


class TestPublicAPIQuickstart:
    def test_readme_quickstart_path(self):
        """The documented quick-start sequence must work verbatim."""
        model = SBFETModel(GNRFETGeometry(n_index=12))
        i = model.current_at(vg=0.5, vd=0.5)
        assert 1e-8 < i < 1e-4

    def test_build_table_and_simulate_inverter(self, tech):
        nt, pt = tech.inverter_tables(0.13)
        metrics = characterize_inverter(nt, pt, 0.4, tech.params)
        assert metrics.delay_s > 0
        assert metrics.snm_v > 0

    def test_table_persistence_through_circuit(self, tech, tmp_path):
        """Tables survive a save/load round trip and drive identical
        circuit results."""
        nt, _ = tech.inverter_tables(0.13)
        path = tmp_path / "n12.npz"
        nt.save(path)
        reloaded = DeviceTable.load(path)
        a = inverter_snm(nt, nt, 0.4, tech.params)
        b = inverter_snm(reloaded, reloaded, 0.4, tech.params)
        assert a == pytest.approx(b, abs=1e-12)


class TestImpurityEndToEnd:
    def test_oxide_charge_slows_inverter(self, tech):
        """A -q oxide impurity near every n-ribbon source (and +q on the
        p side) measurably slows the FO4 inverter - the full chain from
        the image-charge electrostatics to the transient metric."""
        from repro.variability.variants import DeviceVariant
        from repro.variability.width import characterize_variant_inverter

        nominal = characterize_inverter(*tech.inverter_tables(0.13), 0.4,
                                        tech.params)
        degraded = characterize_variant_inverter(
            tech, DeviceVariant(impurity_e=-1.0),
            DeviceVariant(impurity_e=+1.0), 4, 0.4, 0.13)
        assert degraded.delay_s > 1.05 * nominal.delay_s


class TestExplorationConsistency:
    def test_estimator_vs_grid_point(self, tech):
        """The sweep grid and a direct estimate must agree exactly at a
        shared point (no hidden state in the sweep)."""
        from repro.exploration.sweep import sweep_vdd_vt

        grid = sweep_vdd_vt(tech, np.array([0.13]), np.array([0.4]),
                            with_snm=False)
        nt, pt = tech.inverter_tables(0.13)
        direct = estimate_ring_oscillator(nt, pt, 0.4, 15, tech.params)
        assert grid.frequency_hz[0, 0] == pytest.approx(
            direct.frequency_hz, rel=1e-12)

    def test_negf_device_feeds_reporting(self):
        """The NEGF engine output plugs into figure series (Fig 5a
        path) without the fast engine."""
        from repro.device.negf_device import NEGFDevice
        from repro.reporting.figures import FigureSeries

        device = NEGFDevice(GNRFETGeometry(
            n_index=12, impurity=ChargeImpurity(charge_e=-1.0)),
            n_x=21, n_y=9)
        result = device.solve(0.3, 0.4)
        series = FigureSeries("EC", result.x_nm, result.conduction_band_ev)
        assert series.y.max() > 0.3  # raised barrier visible
