"""Tests for Landauer current and conductance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import G_QUANTUM, KT_ROOM_EV, LANDAUER_PREFACTOR_A_PER_EV
from repro.negf.transmission import (
    landauer_conductance,
    landauer_current,
    transmission_dense,
)


class TestLandauerCurrent:
    def test_zero_bias_zero_current(self):
        e = np.linspace(-1, 1, 201)
        t = np.ones_like(e)
        assert landauer_current(e, t, 0.2, 0.2) == pytest.approx(0.0)

    def test_ideal_channel_ballistic_limit(self):
        """T=1 over a wide window: I = (2e/h) * q * V at T -> 0 K limit
        (approximately, for V >> kT)."""
        e = np.linspace(-2, 2, 4001)
        t = np.ones_like(e)
        v = 0.5
        i = landauer_current(e, t, v / 2, -v / 2)
        assert i == pytest.approx(LANDAUER_PREFACTOR_A_PER_EV * v, rel=1e-3)

    def test_sign_follows_bias(self):
        e = np.linspace(-1, 1, 501)
        t = np.ones_like(e)
        assert landauer_current(e, t, 0.2, -0.2) > 0.0
        assert landauer_current(e, t, -0.2, 0.2) < 0.0

    def test_antisymmetric_in_bias_swap(self):
        e = np.linspace(-1, 1, 501)
        rng = np.random.default_rng(0)
        t = rng.uniform(0, 1, size=e.size)
        i1 = landauer_current(e, t, 0.3, -0.1)
        i2 = landauer_current(e, t, -0.1, 0.3)
        assert i1 == pytest.approx(-i2, rel=1e-12)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            landauer_current(np.zeros(5), np.zeros(4), 0.1, 0.0)

    @given(st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=20)
    def test_current_monotone_in_window(self, v):
        e = np.linspace(-1.5, 1.5, 1501)
        t = np.ones_like(e)
        i_small = landauer_current(e, t, v / 2, -v / 2)
        i_large = landauer_current(e, t, v / 2 + 0.05, -v / 2 - 0.05)
        assert i_large > i_small


class TestLandauerConductance:
    def test_quantum_of_conductance(self):
        e = np.linspace(-1, 1, 2001)
        t = np.ones_like(e)
        g = landauer_conductance(e, t, 0.0)
        assert g == pytest.approx(G_QUANTUM, rel=1e-3)

    def test_gapped_channel_suppressed(self):
        e = np.linspace(-1, 1, 2001)
        t = np.where(np.abs(e) > 0.4, 1.0, 0.0)
        g = landauer_conductance(e, t, 0.0)
        # Thermally activated over a 0.4 eV barrier at 300 K.
        assert g < G_QUANTUM * np.exp(-0.4 / KT_ROOM_EV) * 10

    def test_linear_response_consistency(self):
        """G from the thermal-window formula must match dI/dV at zero
        bias computed by finite differences."""
        e = np.linspace(-1, 1, 4001)
        t = 1.0 / (1.0 + np.exp(-(e - 0.1) / 0.05))  # smooth turn-on
        g = landauer_conductance(e, t, 0.0)
        dv = 1e-4
        i_p = landauer_current(e, t, dv / 2, -dv / 2)
        g_fd = i_p / dv
        assert g == pytest.approx(g_fd, rel=1e-3)


class TestTransmissionDense:
    def test_zero_coupling_zero_transmission(self):
        g = np.eye(4, dtype=complex)
        assert transmission_dense(g, np.zeros((4, 4)), np.zeros((4, 4))) == 0.0

    def test_real_output(self):
        rng = np.random.default_rng(5)
        g = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        gamma = np.diag([1.0, 0, 0, 0.5])
        t = transmission_dense(g, gamma, gamma)
        assert isinstance(t, float)
        assert t >= 0.0
