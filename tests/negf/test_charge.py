"""Tests for spectral-function charge integration."""

import numpy as np
import pytest

from repro.negf.charge import carrier_density_from_spectral, spectral_diagonal


class TestSpectralDiagonal:
    def test_positive_semidefinite_diagonal(self):
        rng = np.random.default_rng(2)
        col = rng.normal(size=(4, 2)) + 1j * rng.normal(size=(4, 2))
        gamma = np.diag([0.5, 1.5])
        diag = spectral_diagonal(col, gamma)
        assert np.all(diag >= 0.0)

    def test_known_value(self):
        col = np.array([[1.0 + 0j], [2.0j]])
        gamma = np.array([[2.0]])
        diag = spectral_diagonal(col, gamma)
        assert diag[0] == pytest.approx(2.0)
        assert diag[1] == pytest.approx(8.0)


class TestCarrierDensity:
    def test_full_band_occupation(self):
        """A flat spectral function fully below both chemical potentials
        integrates to (2/2pi) * total spectral weight."""
        e = np.linspace(-1.0, -0.5, 101)
        a = np.ones((e.size, 3))
        n = carrier_density_from_spectral(e, a, np.zeros_like(a), 5.0, 5.0)
        expected = 2.0 / (2 * np.pi) * 0.5  # weight=1 over window 0.5
        assert np.allclose(n, expected, rtol=1e-3)

    def test_empty_band(self):
        e = np.linspace(1.0, 1.5, 51)
        a = np.ones((e.size, 2))
        n = carrier_density_from_spectral(e, a, a, -5.0, -5.0)
        assert np.all(n < 1e-10)

    def test_hole_electron_complementarity(self):
        """n (electron weighting) + p (hole weighting) equals the total
        spectral weight, independent of the chemical potentials."""
        rng = np.random.default_rng(0)
        e = np.linspace(-1, 1, 301)
        a_s = rng.uniform(0, 1, size=(e.size, 4))
        a_d = rng.uniform(0, 1, size=(e.size, 4))
        n = carrier_density_from_spectral(e, a_s, a_d, 0.2, -0.3,
                                          occupation="electron")
        p = carrier_density_from_spectral(e, a_s, a_d, 0.2, -0.3,
                                          occupation="hole")
        total = 2.0 / (2 * np.pi) * np.trapezoid(a_s + a_d, e, axis=0)
        assert np.allclose(n + p, total, rtol=1e-12)

    def test_rejects_unknown_occupation(self):
        e = np.linspace(-1, 1, 11)
        a = np.ones((11, 1))
        with pytest.raises(ValueError):
            carrier_density_from_spectral(e, a, a, 0, 0, occupation="both")

    def test_rejects_shape_mismatch(self):
        e = np.linspace(-1, 1, 11)
        with pytest.raises(ValueError):
            carrier_density_from_spectral(e, np.ones((10, 2)),
                                          np.ones((10, 2)), 0, 0)
