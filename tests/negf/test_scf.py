"""Tests for the generic self-consistent loop."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.negf.mixing import AndersonMixer, LinearMixer
from repro.negf.scf import SCFOptions, self_consistent_loop


def _linear_problem(alpha):
    """Toy coupled problem with closed-form fixed point.

    charge = -alpha * potential;  potential = u0 + charge
    => u* = u0 / (1 + alpha)
    """
    u0 = np.array([1.0, 2.0, 3.0])

    def solve_charge(u):
        return -alpha * u

    def solve_potential(rho):
        return u0 + rho

    return solve_charge, solve_potential, u0 / (1.0 + alpha)


class TestSCFLoop:
    def test_converges_to_fixed_point(self):
        sc, sp, expected = _linear_problem(0.5)
        result = self_consistent_loop(sc, sp, np.zeros(3),
                                      SCFOptions(tolerance_ev=1e-8))
        assert result.converged
        assert np.allclose(result.potential, expected, atol=1e-6)

    def test_strong_coupling_needs_damping(self):
        """alpha = 3 diverges under plain iteration; the default
        Anderson mixer must still converge."""
        sc, sp, expected = _linear_problem(3.0)
        result = self_consistent_loop(sc, sp, np.zeros(3),
                                      SCFOptions(tolerance_ev=1e-8))
        assert result.converged
        assert np.allclose(result.potential, expected, atol=1e-5)

    def test_charge_consistent_with_potential(self):
        sc, sp, _ = _linear_problem(0.5)
        result = self_consistent_loop(sc, sp, np.zeros(3))
        assert np.allclose(result.charge, sc(result.potential), atol=1e-3)

    def test_residual_history_recorded(self):
        sc, sp, _ = _linear_problem(0.5)
        result = self_consistent_loop(sc, sp, np.zeros(3))
        assert len(result.residual_history) == result.iterations
        assert result.final_residual < 1e-4

    def test_failure_raises_by_default(self):
        def sc(u):
            return u * 0.0

        def sp(rho):
            return -rho + np.array([1.0]) * np.random.default_rng().uniform(
                10, 20)  # noisy, never converges

        with pytest.raises(ConvergenceError):
            self_consistent_loop(sc, sp, np.zeros(1),
                                 SCFOptions(max_iterations=5))

    def test_failure_returns_best_effort_when_asked(self):
        def sp(rho):
            return np.array([np.random.default_rng().uniform(10, 20)])

        result = self_consistent_loop(
            lambda u: u * 0.0, sp, np.zeros(1),
            SCFOptions(max_iterations=5, raise_on_failure=False))
        assert not result.converged
        assert result.iterations == 5

    def test_shape_change_detected(self):
        with pytest.raises(ValueError):
            self_consistent_loop(lambda u: u, lambda rho: np.zeros(5),
                                 np.zeros(3))

    def test_custom_mixer_used(self):
        sc, sp, expected = _linear_problem(0.5)
        mixer = LinearMixer(beta=0.6)
        result = self_consistent_loop(sc, sp, np.zeros(3),
                                      SCFOptions(mixer=mixer))
        assert result.converged

    def test_mixer_reset_between_runs(self):
        """Reusing an SCFOptions with a stateful mixer must reset it."""
        sc, sp, _ = _linear_problem(1.5)
        options = SCFOptions(mixer=AndersonMixer(beta=0.4))
        r1 = self_consistent_loop(sc, sp, np.zeros(3), options)
        r2 = self_consistent_loop(sc, sp, np.zeros(3), options)
        assert r1.converged and r2.converged
        assert r1.iterations == r2.iterations
