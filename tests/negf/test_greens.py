"""Tests for dense and recursive Green's function kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.negf.greens import dense_retarded_gf, recursive_greens_function
from repro.negf.self_energy import lead_self_energy_1d
from repro.negf.transmission import transmission_dense


def _random_system(rng, n_blocks, block_size):
    diag = [np.asarray(0.5 * (m + m.T))
            for m in rng.normal(size=(n_blocks, block_size, block_size))]
    coup = [rng.normal(size=(block_size, block_size))
            for _ in range(n_blocks - 1)]
    sigma_l = -0.3j * np.eye(block_size)
    sigma_r = -0.2j * np.eye(block_size)
    return diag, coup, sigma_l, sigma_r


def _assemble_dense(diag, coup, sigma_l, sigma_r):
    nb, bs = len(diag), diag[0].shape[0]
    h = np.zeros((nb * bs, nb * bs))
    for i, d in enumerate(diag):
        h[i * bs:(i + 1) * bs, i * bs:(i + 1) * bs] = d
    for i, c in enumerate(coup):
        h[i * bs:(i + 1) * bs, (i + 1) * bs:(i + 2) * bs] = c
        h[(i + 1) * bs:(i + 2) * bs, i * bs:(i + 1) * bs] = c.T
    sl = np.zeros_like(h, dtype=complex)
    sl[:bs, :bs] = sigma_l
    sr = np.zeros_like(h, dtype=complex)
    sr[-bs:, -bs:] = sigma_r
    return h, sl, sr


class TestDense:
    def test_inverse_property(self):
        rng = np.random.default_rng(0)
        h = rng.normal(size=(6, 6))
        h = 0.5 * (h + h.T)
        e = 0.3
        g = dense_retarded_gf(e, h, eta_ev=1e-6)
        a = (e + 1e-6j) * np.eye(6) - h
        assert np.allclose(a @ g, np.eye(6), atol=1e-9)

    def test_poles_have_negative_imag(self):
        """Retarded GF is analytic in the upper half plane: diagonal
        imaginary part must be <= 0 (spectral positivity)."""
        rng = np.random.default_rng(1)
        h = rng.normal(size=(5, 5))
        h = 0.5 * (h + h.T)
        for e in np.linspace(-3, 3, 7):
            g = dense_retarded_gf(e, h, eta_ev=1e-4)
            assert np.all(np.imag(np.diag(g)) <= 1e-12)


class TestRGFAgainstDense:
    @pytest.mark.parametrize("n_blocks,block_size", [(2, 1), (3, 2),
                                                     (5, 3), (8, 2)])
    def test_all_outputs_match_dense(self, n_blocks, block_size):
        rng = np.random.default_rng(42 + n_blocks)
        diag, coup, sl, sr = _random_system(rng, n_blocks, block_size)
        h, sl_full, sr_full = _assemble_dense(diag, coup, sl, sr)
        e, eta = 0.17, 1e-9

        g_dense = dense_retarded_gf(e, h, sl_full, sr_full, eta)
        res = recursive_greens_function(e, diag, coup, sl, sr, eta)

        bs = block_size
        for i in range(n_blocks):
            assert np.allclose(res.diagonal[i],
                               g_dense[i * bs:(i + 1) * bs,
                                       i * bs:(i + 1) * bs], atol=1e-9)
            assert np.allclose(res.first_column[i],
                               g_dense[i * bs:(i + 1) * bs, :bs], atol=1e-9)
            assert np.allclose(res.last_column[i],
                               g_dense[i * bs:(i + 1) * bs, -bs:], atol=1e-9)

        gamma_l = 1j * (sl_full - sl_full.conj().T)
        gamma_r = 1j * (sr_full - sr_full.conj().T)
        t_dense = transmission_dense(g_dense, gamma_l, gamma_r)
        assert res.transmission == pytest.approx(t_dense, rel=1e-9)

    @given(st.integers(min_value=2, max_value=7),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_rgf_equals_dense_diagonal(self, nb, bs, seed):
        rng = np.random.default_rng(seed)
        diag, coup, sl, sr = _random_system(rng, nb, bs)
        h, sl_full, sr_full = _assemble_dense(diag, coup, sl, sr)
        g_dense = dense_retarded_gf(0.05, h, sl_full, sr_full, 1e-9)
        res = recursive_greens_function(0.05, diag, coup, sl, sr, 1e-9)
        for i in range(nb):
            assert np.allclose(res.diagonal[i],
                               g_dense[i * bs:(i + 1) * bs,
                                       i * bs:(i + 1) * bs], atol=1e-8)


class TestPerfectChain:
    def test_unit_transmission_inside_band(self):
        """A pristine 1-D chain with matched leads transmits exactly one
        channel inside the band."""
        n, t = 30, 1.0
        diag = [np.array([[0.0]])] * n
        coup = [np.array([[-t]])] * (n - 1)
        for e in (-1.5, -0.5, 0.0, 0.9, 1.7):
            s = np.array([[lead_self_energy_1d(e, 0.0, t, 1e-10)]])
            res = recursive_greens_function(e, diag, coup, s, s, 1e-10)
            assert res.transmission == pytest.approx(1.0, abs=1e-5)

    def test_zero_transmission_outside_band(self):
        n, t = 20, 1.0
        diag = [np.array([[0.0]])] * n
        coup = [np.array([[-t]])] * (n - 1)
        e = 2.5
        s = np.array([[lead_self_energy_1d(e, 0.0, t, 1e-10)]])
        res = recursive_greens_function(e, diag, coup, s, s, 1e-10)
        assert res.transmission == pytest.approx(0.0, abs=1e-8)

    def test_barrier_reduces_transmission(self):
        n, t = 30, 1.0
        diag = [np.array([[0.0]])] * n
        diag[15] = np.array([[1.5]])  # on-site barrier
        coup = [np.array([[-t]])] * (n - 1)
        e = 0.2
        s = np.array([[lead_self_energy_1d(e, 0.0, t, 1e-10)]])
        res = recursive_greens_function(e, diag, coup, s, s, 1e-10)
        assert 0.0 < res.transmission < 0.9

    def test_reciprocity(self):
        """Swapping leads leaves T unchanged (two-terminal reciprocity)."""
        rng = np.random.default_rng(7)
        n = 12
        diag = [np.array([[v]]) for v in rng.normal(scale=0.4, size=n)]
        coup = [np.array([[-1.0]])] * (n - 1)
        e = 0.1
        sl = np.array([[lead_self_energy_1d(e, 0.0, 1.0)]])
        sr = np.array([[lead_self_energy_1d(e, -0.2, 1.2)]])
        t_fwd = recursive_greens_function(e, diag, coup, sl, sr).transmission
        t_rev = recursive_greens_function(
            e, diag[::-1], coup[::-1], sr, sl).transmission
        assert t_fwd == pytest.approx(t_rev, rel=1e-9)


class TestValidation:
    def test_empty_device_rejected(self):
        with pytest.raises(ValueError):
            recursive_greens_function(0.0, [], [], np.eye(1), np.eye(1))

    def test_coupling_count_checked(self):
        diag = [np.zeros((1, 1))] * 3
        with pytest.raises(ValueError):
            recursive_greens_function(0.0, diag, [], -1j * np.eye(1),
                                      -1j * np.eye(1))
