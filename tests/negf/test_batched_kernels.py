"""Energy-batched Sancho-Rubio + RGF kernels vs the per-energy loop.

The batched kernels carry every energy of a grid through stacked LAPACK
calls.  Their contract is strict: identical physics to the scalar
kernels (parity below 1e-10), the same convergence behaviour (active-set
shrinking retires an energy at exactly the iteration where the scalar
kernel stops), working sanitizer hooks, and the new obs counters.
"""

import numpy as np
import pytest

from repro import obs, sanitize
from repro.device.negf_realspace import RealSpaceGNRDevice
from repro.errors import SanitizerError
from repro.negf.greens import (
    recursive_greens_function,
    rgf_transmission_batched,
)
from repro.negf.self_energy import (
    sancho_rubio_surface_gf,
    sancho_rubio_surface_gf_batched,
    wide_band_self_energy,
)


def _lead(rng, n=6):
    h00 = rng.normal(size=(n, n))
    h00 = h00 + h00.T
    h01 = rng.normal(size=(n, n))
    return h00, h01


def _chain(rng, n_blocks=5, size=4):
    diag = []
    for _ in range(n_blocks):
        m = rng.normal(size=(size, size))
        diag.append(m + m.T)
    coup = [rng.normal(size=(size, size)) for _ in range(n_blocks - 1)]
    return diag, coup


class TestBatchedSanchoRubio:
    def test_matches_scalar_kernel(self):
        rng = np.random.default_rng(11)
        h00, h01 = _lead(rng)
        energies = np.linspace(-3.0, 3.0, 41)
        batched = sancho_rubio_surface_gf_batched(energies, h00, h01)
        for k, e in enumerate(energies):
            scalar = sancho_rubio_surface_gf(float(e), h00, h01)
            assert np.max(np.abs(batched[k] - scalar)) < 1e-10

    def test_single_energy_grid(self):
        rng = np.random.default_rng(5)
        h00, h01 = _lead(rng, n=4)
        batched = sancho_rubio_surface_gf_batched(np.array([0.37]), h00, h01)
        scalar = sancho_rubio_surface_gf(0.37, h00, h01)
        assert batched.shape == (1, 4, 4)
        assert np.max(np.abs(batched[0] - scalar)) < 1e-10

    def test_physical_gnr_lead(self):
        """Real armchair-GNR lead blocks, energies across gap and bands."""
        dev = RealSpaceGNRDevice(7, 2)
        energies = np.linspace(-1.2, 1.2, 25)
        batched = sancho_rubio_surface_gf_batched(
            energies, dev._h00, dev._h01)
        for k, e in enumerate(energies):
            scalar = sancho_rubio_surface_gf(float(e), dev._h00, dev._h01)
            assert np.max(np.abs(batched[k] - scalar)) < 1e-10


class TestBatchedRGF:
    def _stacked_sigmas(self, energies, size, gamma_l=0.4, gamma_r=0.7):
        sig_l = np.broadcast_to(wide_band_self_energy(gamma_l, size),
                                (energies.size, size, size)).copy()
        sig_r = np.broadcast_to(wide_band_self_energy(gamma_r, size),
                                (energies.size, size, size)).copy()
        return sig_l, sig_r

    def test_matches_scalar_kernel(self):
        rng = np.random.default_rng(2)
        diag, coup = _chain(rng)
        energies = np.linspace(-2.0, 2.0, 17)
        sig_l, sig_r = self._stacked_sigmas(energies, 4)
        trans = rgf_transmission_batched(energies, diag, coup, sig_l, sig_r)
        for k, e in enumerate(energies):
            ref = recursive_greens_function(
                float(e), diag, coup, sig_l[k], sig_r[k])
            assert abs(trans[k] - ref.transmission) < 1e-10

    def test_single_block_device(self):
        rng = np.random.default_rng(9)
        diag, _ = _chain(rng, n_blocks=1)
        energies = np.linspace(-1.0, 1.0, 9)
        sig_l, sig_r = self._stacked_sigmas(energies, 4)
        trans = rgf_transmission_batched(energies, diag, [], sig_l, sig_r)
        for k, e in enumerate(energies):
            ref = recursive_greens_function(
                float(e), diag, [], sig_l[k], sig_r[k])
            assert abs(trans[k] - ref.transmission) < 1e-10

    def test_sigma_shape_validated(self):
        rng = np.random.default_rng(1)
        diag, coup = _chain(rng, n_blocks=2)
        energies = np.linspace(-1.0, 1.0, 3)
        sig = wide_band_self_energy(0.5, 4)
        with pytest.raises(ValueError, match="sigma_left"):
            rgf_transmission_batched(energies, diag, coup, sig,
                                     np.broadcast_to(sig, (3, 4, 4)))

    def test_block_count_validated(self):
        with pytest.raises(ValueError, match="at least one block"):
            rgf_transmission_batched(np.array([0.0]), [], [],
                                     np.zeros((1, 1, 1)),
                                     np.zeros((1, 1, 1)))


class TestRealSpaceDeviceBatched:
    def test_transport_matches_loop(self):
        dev = RealSpaceGNRDevice(7, 6)
        energies = np.linspace(-1.0, 1.0, 31)
        batched = dev.transport(energies, batched=True).transmission
        looped = dev.transport(energies, batched=False).transmission
        assert np.max(np.abs(batched - looped)) < 1e-10

    def test_rough_edge_device_matches_loop(self):
        from repro.device.negf_realspace import rough_edge_onsite

        rng = np.random.default_rng(42)
        dev_ref = RealSpaceGNRDevice(7, 8)
        onsite, n_removed = rough_edge_onsite(dev_ref.ribbon, 0.2, rng)
        assert n_removed > 0
        dev = RealSpaceGNRDevice(7, 8, onsite_ev=onsite)
        energies = np.linspace(-0.8, 0.8, 17)
        batched = dev.transport(energies, batched=True).transmission
        looped = dev.transport(energies, batched=False).transmission
        assert np.max(np.abs(batched - looped)) < 1e-10

    def test_empty_grid(self):
        dev = RealSpaceGNRDevice(7, 2)
        out = dev.transport(np.array([]))
        assert out.transmission.size == 0


class TestBatchedSanitizer:
    @pytest.fixture()
    def sanitizer_on(self, monkeypatch):
        monkeypatch.setattr(sanitize, "ACTIVE", True)

    def test_clean_device_passes(self, sanitizer_on):
        dev = RealSpaceGNRDevice(7, 4)
        out = dev.transport(np.linspace(-0.9, 0.9, 13))
        assert np.all(np.isfinite(out.transmission))

    def test_nonhermitian_block_rejected(self, sanitizer_on):
        rng = np.random.default_rng(3)
        diag, coup = _chain(rng, n_blocks=3)
        diag[1] = diag[1] + 0.1 * np.triu(np.ones((4, 4)), k=1)
        energies = np.array([0.1, 0.2])
        sig = np.broadcast_to(wide_band_self_energy(0.5, 4),
                              (2, 4, 4)).copy()
        with pytest.raises(SanitizerError, match="hermiticity"):
            rgf_transmission_batched(energies, diag, coup, sig, sig)


class TestBatchedCounters:
    @pytest.fixture()
    def traced(self, monkeypatch):
        monkeypatch.setattr(obs, "ACTIVE", True)
        obs.reset()
        yield
        obs.reset()

    def test_energy_points_counted(self, traced):
        dev = RealSpaceGNRDevice(7, 3)
        dev.transport(np.linspace(-0.5, 0.5, 11))
        counters = obs.snapshot()["counters"]
        assert counters["negf.batched_energy_points"] == 11
        assert counters["negf.rgf_batched_passes"] == 1
        assert counters["negf.rgf_block_solves"] == 3
