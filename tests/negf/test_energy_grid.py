"""Tests for energy-grid construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.negf.energy_grid import adaptive_energy_grid, uniform_energy_grid


class TestUniform:
    def test_includes_endpoints(self):
        g = uniform_energy_grid(-1.0, 1.0, 0.1)
        assert g[0] == -1.0 and g[-1] == 1.0

    def test_spacing_bound(self):
        g = uniform_energy_grid(0.0, 1.0, 0.3)
        assert np.max(np.diff(g)) <= 0.3 + 1e-12

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            uniform_energy_grid(1.0, 1.0, 0.1)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            uniform_energy_grid(0.0, 1.0, 0.0)


class TestAdaptive:
    def test_sorted_unique(self):
        g = adaptive_energy_grid(-1, 1, [0.0, 0.5])
        assert np.all(np.diff(g) > 0.0)

    def test_finer_near_features(self):
        g = adaptive_energy_grid(-1, 1, [0.0], coarse_step_ev=0.05,
                                 fine_step_ev=0.002,
                                 feature_halfwidth_ev=0.1)
        near = g[np.abs(g) < 0.08]
        far = g[np.abs(g) > 0.5]
        assert np.max(np.diff(near)) < 0.003
        assert np.max(np.diff(far)) > 0.01

    def test_features_outside_window_ignored(self):
        g_with = adaptive_energy_grid(-1, 1, [5.0])
        g_without = adaptive_energy_grid(-1, 1, [])
        assert np.array_equal(g_with, g_without)

    def test_rejects_inverted_steps(self):
        with pytest.raises(ValueError):
            adaptive_energy_grid(-1, 1, [], coarse_step_ev=0.001,
                                 fine_step_ev=0.01)

    @given(st.lists(st.floats(min_value=-0.9, max_value=0.9),
                    min_size=0, max_size=5))
    @settings(max_examples=25)
    def test_covers_window_for_any_features(self, features):
        g = adaptive_energy_grid(-1, 1, features)
        assert g[0] == pytest.approx(-1.0)
        assert g[-1] == pytest.approx(1.0)
        assert np.all(np.diff(g) > 0.0)

    def test_integral_of_smooth_function_accurate(self):
        """The adaptive grid must integrate a Fermi-edge-like integrand
        accurately when the feature is flagged."""
        mu = 0.123
        g = adaptive_energy_grid(-1, 1, [mu], coarse_step_ev=0.05,
                                 fine_step_ev=0.001)
        f = 1.0 / (1.0 + np.exp((g - mu) / 0.0259))
        val = np.trapezoid(f, g)
        ref_grid = np.linspace(-1, 1, 200001)
        ref = np.trapezoid(1.0 / (1.0 + np.exp((ref_grid - mu) / 0.0259)),
                           ref_grid)
        assert val == pytest.approx(ref, rel=1e-4)
