"""Tests for contact self-energies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.negf.self_energy import (
    broadening_from_self_energy,
    lead_self_energy_1d,
    sancho_rubio_surface_gf,
    self_energy_from_surface_gf,
    wide_band_self_energy,
)


class TestLead1D:
    def test_band_center(self):
        """At the band centre of a chain with onsite 0 and hopping t the
        retarded self-energy is exactly -i t."""
        sigma = lead_self_energy_1d(0.0, 0.0, 1.0, eta_ev=1e-12)
        assert sigma == pytest.approx(-1.0j, abs=1e-6)

    def test_retarded_inside_band(self):
        for e in (-1.5, -0.3, 0.7, 1.9):
            sigma = lead_self_energy_1d(e, 0.0, 1.0)
            assert sigma.imag < 0.0

    def test_real_outside_band(self):
        sigma = lead_self_energy_1d(3.0, 0.0, 1.0, eta_ev=1e-10)
        assert abs(sigma.imag) < 1e-6
        assert abs(sigma) <= 1.0 + 1e-9  # bounded branch

    def test_onsite_shift(self):
        s0 = lead_self_energy_1d(0.5, 0.0, 1.0)
        s_shifted = lead_self_energy_1d(1.5, 1.0, 1.0)
        assert s_shifted == pytest.approx(s0, abs=1e-12)

    def test_zero_hopping(self):
        assert lead_self_energy_1d(0.3, 0.0, 0.0) == 0.0

    @given(st.floats(min_value=-1.9, max_value=1.9))
    @settings(max_examples=30)
    def test_matches_sancho_rubio(self, energy):
        """The analytic 1-D formula must agree with the decimation
        algorithm on 1x1 blocks (skip the slow-converging exact band
        centre; see the Sancho-Rubio docstring)."""
        if abs(energy) < 5e-3:
            energy += 0.01
        s_analytic = lead_self_energy_1d(energy, 0.0, 1.0, eta_ev=1e-7)
        g = sancho_rubio_surface_gf(energy, np.array([[0.0]]),
                                    np.array([[-1.0]]), eta_ev=1e-7)
        s_iter = self_energy_from_surface_gf(g, np.array([[-1.0]]))[0, 0]
        assert s_iter == pytest.approx(s_analytic, abs=1e-4)


class TestSanchoRubio:
    def test_ladder_lead_antihermitian_part(self):
        """For a 2-orbital periodic lead the surface GF must yield a
        positive-semidefinite broadening inside the band."""
        h00 = np.array([[0.0, -1.0], [-1.0, 0.0]])
        h01 = np.array([[-1.0, 0.0], [0.0, -1.0]])
        g = sancho_rubio_surface_gf(0.4, h00, h01, eta_ev=1e-7)
        sigma = self_energy_from_surface_gf(g, h01)
        gamma = broadening_from_self_energy(sigma)
        eigs = np.linalg.eigvalsh(gamma)
        assert np.all(eigs > -1e-8)

    def test_gf_is_symmetric_for_symmetric_lead(self):
        h00 = np.array([[0.0, -0.5], [-0.5, 0.3]])
        h01 = np.diag([-1.0, -0.8])
        g = sancho_rubio_surface_gf(0.2, h00, h01)
        assert np.allclose(g, g.T, atol=1e-9)


class TestWideBand:
    def test_constant_antihermitian(self):
        sigma = wide_band_self_energy(0.5, n=3)
        assert sigma.shape == (3, 3)
        gamma = broadening_from_self_energy(sigma)
        assert np.allclose(gamma, 0.5 * np.eye(3))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            wide_band_self_energy(-0.1)


class TestBroadening:
    def test_hermitian_output(self):
        rng = np.random.default_rng(3)
        sigma = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        gamma = broadening_from_self_energy(sigma)
        assert np.allclose(gamma, gamma.conj().T)

    def test_scalar_input(self):
        gamma = broadening_from_self_energy(np.array(-0.25j))
        assert gamma[0, 0] == pytest.approx(0.5)
