"""Tests for SCF mixing schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.negf.mixing import AndersonMixer, LinearMixer


def _fixed_point_iterate(mixer, g, x0, n_iter=200, tol=1e-10):
    """Drive x -> g(x) to its fixed point with the given mixer."""
    x = np.asarray(x0, dtype=float)
    for i in range(n_iter):
        fx = g(x)
        if np.max(np.abs(fx - x)) < tol:
            return x, i
        x = mixer.update(x, fx)
    return x, n_iter


class TestLinearMixer:
    def test_validates_beta(self):
        with pytest.raises(ValueError):
            LinearMixer(beta=0.0)
        with pytest.raises(ValueError):
            LinearMixer(beta=1.5)

    def test_full_mixing_is_identityless(self):
        m = LinearMixer(beta=1.0)
        x = np.array([1.0, 2.0])
        f = np.array([3.0, 0.0])
        assert np.allclose(m.update(x, f), f)

    def test_converges_contraction(self):
        m = LinearMixer(beta=0.5)
        x, iters = _fixed_point_iterate(
            m, lambda x: 0.5 * x + 1.0, np.zeros(3))
        assert np.allclose(x, 2.0, atol=1e-8)

    def test_stabilizes_divergent_map(self):
        """g(x) = -1.5 x + 5 diverges under plain iteration (|slope|>1)
        but converges with beta = 0.3."""
        m = LinearMixer(beta=0.3)
        x, iters = _fixed_point_iterate(m, lambda x: -1.5 * x + 5.0,
                                        np.zeros(1), n_iter=500)
        assert np.allclose(x, 2.0, atol=1e-6)


class TestAndersonMixer:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AndersonMixer(beta=0.0)
        with pytest.raises(ValueError):
            AndersonMixer(history=0)

    def test_linear_map_solved_fast(self):
        """Anderson acceleration solves an n-dimensional affine map in
        ~n+1 iterations (exact for linear problems)."""
        rng = np.random.default_rng(0)
        a = 0.6 * rng.normal(size=(4, 4)) / 4
        b = rng.normal(size=4)
        m = AndersonMixer(beta=0.5, history=6)
        x, iters = _fixed_point_iterate(m, lambda x: a @ x + b,
                                        np.zeros(4), tol=1e-11)
        expected = np.linalg.solve(np.eye(4) - a, b)
        assert np.allclose(x, expected, atol=1e-8)
        assert iters < 20

    def test_faster_than_linear_on_stiff_map(self):
        rng = np.random.default_rng(1)
        a = np.diag([0.95, -0.9, 0.5, 0.1])
        b = np.ones(4)

        lin_x, lin_iters = _fixed_point_iterate(
            LinearMixer(beta=0.3), lambda x: a @ x + b, np.zeros(4))
        and_x, and_iters = _fixed_point_iterate(
            AndersonMixer(beta=0.3, history=5), lambda x: a @ x + b,
            np.zeros(4))
        assert and_iters < lin_iters

    def test_reset_clears_history(self):
        m = AndersonMixer()
        m.update(np.zeros(2), np.ones(2))
        m.update(np.ones(2), np.ones(2) * 1.5)
        m.reset()
        assert m._xs == [] and m._fs == []

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_nonlinear_scalar_maps_converge(self, seed):
        rng = np.random.default_rng(seed)
        c = rng.uniform(0.5, 3.0)
        m = AndersonMixer(beta=0.4, history=4)
        # x = c * tanh(x) + 1 has a unique attracting fixed point.
        x, iters = _fixed_point_iterate(
            m, lambda x: np.tanh(x) * 0.8 + c * 0.1, np.zeros(1),
            n_iter=300)
        residual = np.abs(np.tanh(x) * 0.8 + c * 0.1 - x)
        assert residual.max() < 1e-8
