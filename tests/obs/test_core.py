"""Core recorder semantics: flag, spans, metrics, drain/absorb."""

from __future__ import annotations

import os

from repro import obs


class TestFlag:
    def test_disabled_by_default(self):
        assert obs.ACTIVE is False
        assert obs.active() is False

    def test_enable_sets_env_for_workers(self):
        obs.enable()
        assert obs.ACTIVE is True
        assert os.environ[obs.TRACE_ENV] == "1"
        obs.disable()
        assert obs.ACTIVE is False
        assert obs.TRACE_ENV not in os.environ

    def test_falsey_env_values_stay_disabled(self):
        for value in ("", "0", "false", "OFF", "No"):
            assert value.strip().lower() in obs._FALSEY


class TestDisabledPath:
    def test_span_returns_the_null_singleton(self):
        # Identity, not just equality: the disabled path allocates nothing.
        assert obs.span("a") is obs.span("b", vg=0.4) is obs.NULL_SPAN

    def test_nothing_is_recorded_while_disabled(self):
        with obs.span("outer"):
            obs.incr("n.things")
            obs.gauge("g", 1.0)
            obs.observe("h", 2.0)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == {}


class TestSpans:
    def test_paths_nest_by_slash(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("b"):
                pass
        spans = obs.snapshot()["spans"]
        assert spans["a"]["count"] == 1
        assert spans["a/b"]["count"] == 2
        assert spans["a/b/c"]["count"] == 1
        assert obs.current_recorder().stack == []

    def test_durations_accumulate(self):
        obs.enable()
        for _ in range(3):
            with obs.span("tick"):
                pass
        s = obs.snapshot()["spans"]["tick"]
        assert s["count"] == 3
        assert s["total_s"] >= s["max_s"] >= s["min_s"] >= 0.0

    def test_attrs_last_wins(self):
        obs.enable()
        with obs.span("solve", vg=0.1):
            pass
        with obs.span("solve", vg=0.2, vd=0.5):
            pass
        attrs = obs.snapshot()["spans"]["solve"]["attrs"]
        assert attrs == {"vg": 0.2, "vd": 0.5}

    def test_exception_still_closes_span(self):
        obs.enable()
        try:
            with obs.span("outer"):
                with obs.span("boom"):
                    raise RuntimeError("x")
        except RuntimeError:
            pass
        spans = obs.snapshot()["spans"]
        assert spans["outer/boom"]["count"] == 1
        assert obs.current_recorder().stack == []


class TestMetrics:
    def test_counters_accumulate(self):
        obs.enable()
        obs.incr("scf.solves")
        obs.incr("scf.solves")
        obs.incr("scf.iterations", 12)
        counters = obs.snapshot()["counters"]
        assert counters["scf.solves"] == 2
        assert counters["scf.iterations"] == 12

    def test_gauges_last_wins(self):
        obs.enable()
        obs.gauge("temp", 1.0)
        obs.gauge("temp", 3.0)
        assert obs.snapshot()["gauges"]["temp"] == 3.0

    def test_histogram_statistics_are_exact(self):
        obs.enable()
        for v in (5.0, 1.0, 3.0):
            obs.observe("iters", v)
        h = obs.snapshot()["histograms"]["iters"]
        assert h["count"] == 3
        assert h["total"] == 9.0
        assert h["min"] == 1.0
        assert h["max"] == 5.0
        assert h["values"] == [5.0, 1.0, 3.0]

    def test_histogram_values_cap_but_stats_stay_exact(self):
        obs.enable()
        n = obs.HISTOGRAM_VALUE_CAP + 10
        for i in range(n):
            obs.observe("big", float(i))
        h = obs.snapshot()["histograms"]["big"]
        assert h["count"] == n
        assert h["max"] == float(n - 1)
        assert len(h["values"]) == obs.HISTOGRAM_VALUE_CAP


class TestAnnotations:
    def test_last_writer_wins(self):
        obs.enable()
        obs.annotate("scheduler_kind", "LocalScheduler")
        obs.annotate("scheduler_kind", "DistributedScheduler")
        assert obs.snapshot()["annotations"] == {
            "scheduler_kind": "DistributedScheduler"}

    def test_values_are_coerced_to_str(self):
        obs.enable()
        obs.annotate("agents", 3)
        assert obs.snapshot()["annotations"]["agents"] == "3"

    def test_noop_when_disabled(self):
        obs.annotate("ghost", "x")
        obs.enable()
        assert obs.snapshot()["annotations"] == {}

    def test_annotations_merge_through_drain_absorb(self):
        obs.enable()
        obs.annotate("from_worker", "yes")
        payload = obs.drain()
        obs.annotate("parent", "1")
        obs.absorb(payload)
        snap = obs.snapshot()
        assert snap["annotations"] == {"from_worker": "yes", "parent": "1"}

    def test_reset_clears_annotations(self):
        obs.enable()
        obs.annotate("a", "b")
        obs.reset()
        assert obs.snapshot()["annotations"] == {}


class TestDrainAbsorb:
    def test_drain_clears_the_recorder(self):
        obs.enable()
        obs.incr("n", 4)
        payload = obs.drain()
        assert payload["counters"]["n"] == 4
        assert obs.snapshot()["counters"] == {}

    def test_absorb_nests_under_the_open_span(self):
        obs.enable()
        obs.incr("work.items", 2)
        with obs.span("work.item"):
            pass
        payload = obs.drain()

        with obs.span("parent"):
            obs.absorb(payload)
        snap = obs.snapshot()
        assert snap["counters"]["work.items"] == 2
        assert snap["spans"]["parent/work.item"]["count"] == 1

    def test_absorb_without_nesting_keeps_paths(self):
        obs.enable()
        with obs.span("work.item"):
            pass
        payload = obs.drain()
        with obs.span("parent"):
            obs.absorb(payload, nest=False)
        assert "work.item" in obs.snapshot()["spans"]

    def test_absorb_none_is_a_noop(self):
        obs.enable()
        obs.absorb(None)
        assert obs.snapshot()["counters"] == {}

    def test_merge_is_order_independent_for_counters(self):
        obs.enable()
        obs.incr("n", 1)
        obs.observe("h", 2.0)
        a = obs.drain()
        obs.incr("n", 5)
        obs.observe("h", 7.0)
        b = obs.drain()

        obs.absorb(a)
        obs.absorb(b)
        fwd = obs.drain()
        obs.absorb(b)
        obs.absorb(a)
        rev = obs.drain()
        assert fwd["counters"] == rev["counters"] == {"n": 6}
        for snap in (fwd, rev):
            h = snap["histograms"]["h"]
            assert (h["count"], h["total"], h["min"], h["max"]) == \
                (2, 9.0, 2.0, 7.0)
