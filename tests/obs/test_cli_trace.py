"""End-to-end: `repro run --trace` manifests and `repro trace summarize`."""

from __future__ import annotations

import json

from repro import obs
from repro.cli import main


class TestRunTrace:
    def test_traced_run_writes_manifest_with_rollups(self, tmp_path, tech,
                                                     capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "fig2", "--fast", "--trace",
                     "--out", str(out)]) == 0
        manifest_path = tmp_path / "report.txt.manifest.json"
        assert manifest_path.is_file()
        stdout = capsys.readouterr().out
        assert str(manifest_path) in stdout

        manifest = obs.load_manifest(manifest_path)
        assert manifest["label"] == "repro run fig2"
        assert manifest["config"] == {"experiments": ["fig2"],
                                      "fast": True}
        assert manifest["timing"]["wall_s"] > 0
        assert any(path.startswith("cli.run.fig2")
                   for path in manifest["spans"])

        roll = manifest["rollups"]
        for key in ("scf_iterations_total", "energy_grid_points_total",
                    "cache_hit_rate"):
            assert key in roll
        # The session-scoped tech fixture may have pre-built the device
        # table: then this run is one cache hit and no SCF work; on a
        # cold cache it is a full build with hundreds of SCF solves.
        assert roll["scf_iterations_total"] > 0 or roll["cache_hits"] > 0

    def test_untraced_run_writes_no_manifest(self, tmp_path, tech, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "fig2", "--fast", "--out", str(out)]) == 0
        assert not (tmp_path / "report.txt.manifest.json").exists()


class TestTraceSummarize:
    def _manifest(self, tmp_path) -> str:
        obs.enable()
        with obs.span("cli.run.demo"):
            obs.incr("scf.solves", 2)
            obs.incr("scf.iterations", 30)
            obs.observe("scf.iterations_to_converge", 15)
            obs.observe("scf.iterations_to_converge", 15)
        manifest = obs.build_manifest("repro run demo", wall_s=0.5)
        obs.disable()
        return str(obs.write_manifest(manifest,
                                      tmp_path / "demo.manifest.json"))

    def test_text_summary(self, tmp_path, capsys):
        path = self._manifest(tmp_path)
        assert main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "run manifest: repro run demo" in out
        assert "rollups" in out
        assert "scf_iterations_total" in out
        assert "cli.run.demo" in out

    def test_json_summary(self, tmp_path, capsys):
        path = self._manifest(tmp_path)
        assert main(["trace", "summarize", path, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro-obs-summary/1"
        assert summary["rollups"]["scf_iterations_total"] == 30
        assert summary["histograms"]["scf.iterations_to_converge"][
            "count"] == 2

    def test_top_limits_spans(self, tmp_path, capsys):
        path = self._manifest(tmp_path)
        assert main(["trace", "summarize", path, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "top spans by total time (top 1)" in out

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize",
                     str(tmp_path / "absent.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope/0"}))
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "cannot read manifest" in capsys.readouterr().err
