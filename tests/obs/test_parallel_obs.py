"""Worker metrics cross the parallel_map process boundary correctly."""

from __future__ import annotations

from repro import obs
from repro.runtime import parallel_map


def _traced_square(x: int) -> int:
    """Module-level so it pickles into worker processes."""
    with obs.span("work.item"):
        obs.incr("work.items")
        obs.observe("work.value", float(x))
    return x * x


def _sweep(workers: int | None, chunk_size: int | None = None) -> list[int]:
    with obs.span("test.sweep"):
        return parallel_map(_traced_square, range(8), workers=workers,
                            chunk_size=chunk_size)


class TestWorkerForwarding:
    def test_worker_spans_nest_under_parallel_map(self):
        obs.enable()  # workers inherit REPRO_TRACE from the environment
        results = _sweep(workers=2, chunk_size=2)
        assert results == [x * x for x in range(8)]
        snap = obs.snapshot()
        assert snap["counters"]["work.items"] == 8
        # Worker spans are re-rooted under the parent's open span chain.
        key = "test.sweep/runtime.parallel_map/work.item"
        assert snap["spans"][key]["count"] == 8
        pm = snap["spans"]["test.sweep/runtime.parallel_map"]
        assert pm["attrs"]["workers"] == 2
        assert pm["attrs"]["items"] == 8

    def test_histograms_cross_the_boundary(self):
        obs.enable()
        _sweep(workers=2, chunk_size=3)
        h = obs.snapshot()["histograms"]["work.value"]
        assert h["count"] == 8
        assert h["total"] == float(sum(range(8)))
        assert h["min"] == 0.0
        assert h["max"] == 7.0

    def test_aggregation_deterministic_across_worker_counts(self):
        reference = None
        for workers in (2, 3, 4):
            obs.reset()
            obs.enable()
            _sweep(workers=workers)
            snap = obs.snapshot()
            key = (snap["counters"],
                   {n: (h["count"], h["total"], h["min"], h["max"])
                    for n, h in snap["histograms"].items()})
            if reference is None:
                reference = key
            else:
                assert key == reference
            obs.disable()

    def test_serial_path_matches_parallel_counters(self):
        obs.enable()
        _sweep(workers=1)
        serial = obs.drain()
        _sweep(workers=2)
        parallel = obs.drain()
        assert serial["counters"] == parallel["counters"]
        # Serial spans skip the parallel_map segment but the leaf span
        # count is identical.
        assert serial["spans"]["test.sweep/work.item"]["count"] == \
            parallel["spans"]["test.sweep/runtime.parallel_map/work.item"
                              ]["count"]

    def test_disabled_mode_forwards_nothing(self):
        assert obs.ACTIVE is False
        results = _sweep(workers=2, chunk_size=2)
        assert results == [x * x for x in range(8)]
        assert obs.snapshot()["spans"] == {}
        assert obs.snapshot()["counters"] == {}
