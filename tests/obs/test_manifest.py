"""Manifest assembly, atomic persistence, rollups, and summaries."""

from __future__ import annotations

import json

import pytest

from repro import obs


def _traced_snapshot() -> dict:
    """A small but fully populated recorder snapshot."""
    obs.enable()
    with obs.span("cli.run.fig2", fast=True):
        with obs.span("device.build_table", n_index=12):
            obs.incr("cache.table_builds")
        obs.incr("scf.solves", 4)
        obs.incr("scf.iterations", 80)
        for iters in (15, 20, 25, 20):
            obs.observe("scf.iterations_to_converge", iters)
        obs.incr("negf.energy_grids", 4)
        obs.incr("negf.energy_grid_points", 4 * 301)
        obs.incr("cache.artifact_misses")
        obs.incr("cache.artifact_hits", 3)
        obs.gauge("grid.final_points", 301)
    return obs.snapshot()


class TestRollups:
    def test_headline_rollups(self):
        roll = obs.compute_rollups(_traced_snapshot())
        assert roll["scf_solves"] == 4
        assert roll["scf_iterations_total"] == 80
        assert roll["scf_iterations_mean"] == 20.0
        assert roll["scf_iterations_max"] == 25
        assert roll["energy_grids_built"] == 4
        assert roll["energy_grid_points_total"] == 4 * 301
        assert roll["cache_hits"] == 3
        assert roll["cache_misses"] == 1
        assert roll["cache_hit_rate"] == pytest.approx(0.75)
        assert roll["table_builds"] == 1

    def test_every_key_present_for_empty_snapshot(self):
        roll = obs.compute_rollups({"counters": {}, "histograms": {}})
        assert roll["scf_solves"] == 0
        assert roll["scf_iterations_mean"] is None
        # No lookups at all must not read as "everything missed".
        assert roll["cache_hit_rate"] is None
        assert roll["transient_steps_total"] == 0
        assert roll["device_bias_points"] == 0

    def test_scheduler_rollups(self):
        obs.enable()
        obs.annotate("scheduler_kind", "DistributedScheduler")
        obs.gauge("scheduler.agents", 3)
        obs.incr("scheduler.leases_granted", 7)
        obs.incr("scheduler.leases_redispatched", 2)
        obs.incr("scheduler.leases_expired", 1)
        obs.incr("scheduler.agent_crashes", 1)
        obs.incr("scheduler.agents_quarantined", 1)
        obs.incr("scheduler.local_fallbacks", 1)
        obs.incr("scheduler.local_fallback_tasks", 4)
        obs.incr("resilience.deadline_exceeded", 2)
        roll = obs.compute_rollups(obs.snapshot())
        assert roll["scheduler_kind"] == "DistributedScheduler"
        assert roll["scheduler_agents"] == 3
        assert roll["leases_granted"] == 7
        assert roll["leases_redispatched"] == 2
        assert roll["leases_expired"] == 1
        assert roll["agent_crashes"] == 1
        assert roll["agents_quarantined"] == 1
        assert roll["local_fallbacks"] == 1
        assert roll["local_fallback_tasks"] == 4
        assert roll["deadlines_exceeded"] == 2

    def test_scheduler_kind_defaults_to_local(self):
        roll = obs.compute_rollups({"counters": {}, "histograms": {}})
        assert roll["scheduler_kind"] == "LocalScheduler"
        assert roll["leases_granted"] == 0

    def test_manifest_carries_annotations_block(self):
        obs.enable()
        obs.annotate("scheduler_kind", "DistributedScheduler")
        manifest = obs.build_manifest(label="t", config={})
        assert manifest["annotations"] == {
            "scheduler_kind": "DistributedScheduler"}

    def test_memory_hits_count_as_cache_hits(self):
        roll = obs.compute_rollups(
            {"counters": {"cache.table_memory_hits": 2,
                          "cache.artifact_misses": 2}})
        assert roll["cache_hits"] == 2
        assert roll["cache_hit_rate"] == pytest.approx(0.5)

    def test_warm_cold_scf_split(self):
        """Warm-started and cold-started solves are averaged separately —
        a blended mean would hide the continuation win."""
        roll = obs.compute_rollups(
            {"counters": {"scf.cold_solves": 2, "scf.cold_iterations": 44,
                          "scf.warm_solves": 4, "scf.warm_iterations": 60,
                          "scf.warm_starts": 4}})
        assert roll["scf_warm_starts"] == 4
        assert roll["scf_cold_iterations_mean"] == pytest.approx(22.0)
        assert roll["scf_warm_iterations_mean"] == pytest.approx(15.0)

    def test_warm_cold_split_defaults_to_none(self):
        roll = obs.compute_rollups({"counters": {}, "histograms": {}})
        assert roll["scf_warm_starts"] == 0
        assert roll["scf_cold_iterations_mean"] is None
        assert roll["scf_warm_iterations_mean"] is None


class TestManifestDocument:
    def test_build_uses_live_recorder_by_default(self):
        _traced_snapshot()
        manifest = obs.build_manifest("unit test", config={"fast": True},
                                      seed=7, wall_s=1.5, cpu_s=1.2)
        assert manifest["schema"] == obs.MANIFEST_SCHEMA
        assert manifest["label"] == "unit test"
        assert manifest["config"] == {"fast": True}
        assert manifest["seed"] == 7
        assert manifest["timing"] == {"wall_s": 1.5, "cpu_s": 1.2}
        assert manifest["counters"]["scf.solves"] == 4
        assert manifest["rollups"]["scf_iterations_total"] == 80
        assert "cli.run.fig2" in manifest["spans"]

    def test_env_knobs_are_captured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        manifest = obs.build_manifest("env test")
        assert manifest["env"]["REPRO_WORKERS"] == "4"
        assert all(k.startswith("REPRO_") for k in manifest["env"])

    def test_git_revision_is_none_outside_a_repo(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert obs.git_revision() is None


class TestPersistence:
    def test_round_trip_and_atomicity(self, tmp_path):
        _traced_snapshot()
        manifest = obs.build_manifest("round trip")
        path = obs.write_manifest(manifest, tmp_path / "run.manifest.json")
        assert path.is_file()
        # Atomic write leaves no temp files behind.
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]
        loaded = obs.load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))

    def test_wrong_schema_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            obs.load_manifest(bad)

    def test_parent_directories_are_created(self, tmp_path):
        manifest = obs.build_manifest("nested")
        path = obs.write_manifest(manifest, tmp_path / "a/b/m.json")
        assert path.is_file()


class TestSummaries:
    def test_text_summary_sections(self):
        _traced_snapshot()
        manifest = obs.build_manifest("text test", wall_s=2.0, cpu_s=1.0)
        text = obs.summarize_text(manifest)
        assert "run manifest: text test" in text
        assert "rollups" in text
        assert "scf_iterations_total" in text
        assert "top spans by total time" in text
        assert "cli.run.fig2" in text
        assert "scf.iterations_to_converge" in text

    def test_json_summary_reduces_histograms(self):
        _traced_snapshot()
        manifest = obs.build_manifest("json test")
        summary = obs.summarize_json(manifest)
        assert summary["schema"] == "repro-obs-summary/1"
        h = summary["histograms"]["scf.iterations_to_converge"]
        assert h == {"count": 4, "min": 15, "max": 25, "mean": 20.0}
        assert "values" not in h
        # Must be JSON-serializable end to end.
        json.dumps(summary)

    def test_top_spans_ranked_by_total_time(self):
        _traced_snapshot()
        manifest = obs.build_manifest("rank test")
        ranked = obs.top_spans(manifest, top=2)
        assert len(ranked) == 2
        assert ranked[0]["total_s"] >= ranked[1]["total_s"]
        # The outermost span contains all the others.
        assert ranked[0]["path"] == "cli.run.fig2"

    def test_top_limits_the_span_list(self):
        _traced_snapshot()
        manifest = obs.build_manifest("limit test")
        assert len(obs.top_spans(manifest, top=1)) == 1
