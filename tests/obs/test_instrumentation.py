"""Instrumented hot paths emit the documented counter families."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.device.geometry import GNRFETGeometry
from repro.device.sbfet import SBFETModel
from repro.negf.scf import SCFOptions, self_consistent_loop
from repro.runtime import ArtifactCache


class TestSCFCounters:
    def test_converged_loop_emits_scf_family(self):
        obs.enable()
        target = np.full(4, 0.2)
        result = self_consistent_loop(
            solve_charge=lambda u: -u,
            solve_potential=lambda rho: target,
            initial_potential=np.zeros(4),
            options=SCFOptions(tolerance_ev=1e-6))
        assert result.converged
        snap = obs.snapshot()
        assert snap["counters"]["scf.solves"] == 1
        assert snap["counters"]["scf.converged"] == 1
        assert snap["counters"]["scf.iterations"] == result.iterations
        h = snap["histograms"]["scf.iterations_to_converge"]
        assert h["count"] == 1
        assert h["max"] == result.iterations

    def test_diverged_loop_counts_separately(self):
        obs.enable()
        result = self_consistent_loop(
            solve_charge=lambda u: u,
            # No fixed point: the residual is 1 at every iteration.
            solve_potential=lambda rho: rho + 1.0,
            initial_potential=np.zeros(3),
            options=SCFOptions(max_iterations=5,
                               raise_on_failure=False))
        assert not result.converged
        counters = obs.snapshot()["counters"]
        assert counters["scf.solves"] == 1
        assert counters["scf.diverged"] == 1
        assert counters.get("scf.converged", 0) == 0
        assert counters["scf.iterations"] == 5


class TestCacheCounters:
    def test_miss_write_hit_sequence(self, tmp_path):
        obs.enable()
        store = ArtifactCache("unit", root=tmp_path, enabled=True)
        assert store.get("k") is None
        store.put("k", data=np.arange(3.0))
        payload = store.get("k")
        assert payload is not None
        counters = obs.snapshot()["counters"]
        assert counters["cache.artifact_misses"] == 1
        assert counters["cache.artifact_writes"] == 1
        assert counters["cache.artifact_hits"] == 1

    def test_corrupt_file_counts_as_miss(self, tmp_path):
        obs.enable()
        store = ArtifactCache("unit", root=tmp_path, enabled=True)
        store.directory.mkdir(parents=True)
        store.path_for("bad").write_bytes(b"not an npz")
        assert store.get("bad") is None
        assert obs.snapshot()["counters"]["cache.artifact_misses"] == 1

    def test_disabled_cache_emits_nothing(self, tmp_path):
        obs.enable()
        store = ArtifactCache("unit", root=tmp_path, enabled=False)
        assert store.get("k") is None
        assert store.put("k", data=np.zeros(1)) is None
        assert obs.snapshot()["counters"] == {}


class TestDeviceCounters:
    @pytest.fixture(scope="class")
    def model(self):
        return SBFETModel(GNRFETGeometry(n_index=12))

    def test_solve_bias_emits_scf_and_grid_counters(self, model):
        obs.enable()
        model.solve_bias(0.4, 0.1)
        snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["device.bias_points"] == 1
        # The bisection engine reports through the same scf.* family as
        # the NEGF loop, so rollups cover both engines.
        assert counters["scf.solves"] == 1
        assert counters["scf.converged"] == 1
        assert counters["scf.iterations"] >= 1
        assert counters["negf.energy_grids"] >= 1
        assert counters["negf.energy_grid_points"] > 0
        assert snap["histograms"]["scf.iterations_to_converge"]["count"] == 1

    def test_rollups_reflect_the_device_solve(self, model):
        obs.enable()
        model.solve_bias(0.2, 0.3)
        roll = obs.compute_rollups(obs.snapshot())
        assert roll["scf_solves"] == 1
        assert roll["scf_iterations_total"] >= 1
        assert roll["energy_grids_built"] >= 1
        assert roll["energy_grid_points_total"] > 0
        assert roll["device_bias_points"] == 1

    def test_disabled_solve_emits_nothing(self, model):
        assert obs.ACTIVE is False
        model.solve_bias(0.4, 0.1)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
