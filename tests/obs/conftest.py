"""Keep the process-wide recorder and flag pristine between tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.disable()
    obs.reset()
