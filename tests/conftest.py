"""Shared fixtures.

Device tables are expensive (seconds each), so everything circuit-level
shares session-scoped fixtures; the in-process device-table cache keyed
by geometry means variant tables built by one test are reused by others.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.circuit.inverter import CircuitParameters
from repro.device.geometry import GNRFETGeometry
from repro.device.tables import DeviceTable, build_device_table
from repro.exploration.technology import GNRFETTechnology
from repro.runtime import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache_dir(tmp_path_factory):
    """Point the runtime disk cache at a per-session temp directory.

    Test runs must never reuse stale artifacts from (or pollute) the
    user-level ``~/.cache/repro-gnrfet`` store; within the session the
    temp store still exercises the persistent-cache code paths and lets
    parallel workers share tables.
    """
    path = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(path)
    yield path
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def nominal_geometry() -> GNRFETGeometry:
    return GNRFETGeometry()


@pytest.fixture(scope="session")
def nominal_table(nominal_geometry) -> DeviceTable:
    """Full-resolution nominal per-ribbon table (built once per session)."""
    return build_device_table(nominal_geometry)


@pytest.fixture(scope="session")
def tech() -> GNRFETTechnology:
    """Nominal technology bundle (shares the cached nominal table)."""
    return GNRFETTechnology.build()


@pytest.fixture(scope="session")
def nominal_pair(tech):
    """(n, p) array tables at the paper's nominal operating point."""
    return tech.inverter_tables(0.13)


@pytest.fixture(scope="session")
def params() -> CircuitParameters:
    return CircuitParameters()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20080613)  # DAC 2008 dates
