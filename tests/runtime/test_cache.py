"""Tests for the content-addressed on-disk artifact cache."""

import dataclasses

import numpy as np
import pytest

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.tables import (
    build_device_table,
    clear_table_cache,
    table_cache_key,
)
from repro.runtime.cache import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    ArtifactCache,
    cache_enabled,
    cache_root,
    canonical_repr,
    content_key,
)

VG = np.array([0.0, 0.2, 0.4, 0.6])
VD = np.array([0.0, 0.5])


class TestCanonicalRepr:
    def test_dataclasses_flatten_recursively(self):
        g = GNRFETGeometry(impurity=ChargeImpurity(charge_e=-1.0))
        text = canonical_repr(g)
        assert "charge_e=-1.0" in text
        assert "n_index=12" in text

    def test_floats_full_precision(self):
        assert canonical_repr(0.1) != canonical_repr(0.1 + 1e-16)
        assert canonical_repr(0.30000000000000004) != canonical_repr(0.3)

    def test_arrays_content_addressed(self):
        a = np.linspace(0.0, 1.0, 5)
        assert canonical_repr(a) == canonical_repr(a.copy())
        assert canonical_repr(a) != canonical_repr(a + 1e-12)
        assert canonical_repr(a) != canonical_repr(a.astype(np.float32))

    def test_unhashable_objects_rejected(self):
        with pytest.raises(TypeError):
            canonical_repr(object())

    def test_content_key_is_hex_digest(self):
        key = content_key("a", 1, None)
        assert len(key) == 64
        assert key == content_key("a", 1, None)


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        store = ArtifactCache("tables", root=tmp_path)
        payload = {"x": np.linspace(0, 1, 7), "y": np.eye(3)}
        store.put("k1", **payload)
        loaded = store.get("k1")
        assert set(loaded) == {"x", "y"}
        assert np.array_equal(loaded["x"], payload["x"])
        assert np.array_equal(loaded["y"], payload["y"])

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactCache("tables", root=tmp_path).get("nope") is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ArtifactCache("tables", root=tmp_path)
        store.put("k1", x=np.zeros(4))
        assert list(store.directory.glob("*.tmp")) == []
        assert [p.name for p in store.directory.glob("*.npz")] == ["k1.npz"]

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ArtifactCache("tables", root=tmp_path)
        store.directory.mkdir(parents=True)
        store.path_for("bad").write_bytes(b"not an npz payload")
        assert store.get("bad") is None

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        store = ArtifactCache("tables", root=tmp_path)
        assert not cache_enabled()
        assert not store.enabled
        assert store.put("k1", x=np.zeros(2)) is None
        assert store.get("k1") is None
        assert not (tmp_path / "tables").exists()

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert cache_root() == tmp_path / "elsewhere"

    def test_clear_counts_artifacts(self, tmp_path):
        store = ArtifactCache("tables", root=tmp_path)
        store.put("a", x=np.zeros(2))
        store.put("b", x=np.ones(2))
        assert store.keys() == sorted(["a", "b"])
        assert store.clear() == 2
        assert store.keys() == []


class TestTableCacheKey:
    def test_stable_for_equal_inputs(self):
        g = GNRFETGeometry()
        assert (table_cache_key(g, VG, VD, None)
                == table_cache_key(GNRFETGeometry(), VG.copy(), VD.copy(),
                                   None))

    def test_changes_with_geometry(self):
        base = table_cache_key(GNRFETGeometry(), VG, VD, None)
        assert table_cache_key(GNRFETGeometry(n_index=9), VG, VD,
                               None) != base
        assert table_cache_key(
            GNRFETGeometry(impurity=ChargeImpurity(charge_e=1.0)),
            VG, VD, None) != base
        assert table_cache_key(
            GNRFETGeometry(oxide_thickness_nm=2.0), VG, VD, None) != base

    def test_changes_with_grids_and_modes(self):
        g = GNRFETGeometry()
        base = table_cache_key(g, VG, VD, None)
        assert table_cache_key(g, VG + 0.01, VD, None) != base
        assert table_cache_key(g, VG, np.array([0.0, 0.4]), None) != base
        assert table_cache_key(g, VG, VD, 3) != base

    def test_changes_with_engine_version(self):
        g = GNRFETGeometry()
        assert (table_cache_key(g, VG, VD, None, version="sbfet-v1")
                != table_cache_key(g, VG, VD, None, version="sbfet-v2"))


class TestDeviceTablePersistence:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        clear_table_cache()
        yield tmp_path
        clear_table_cache()

    def test_disk_round_trip_equal_table(self, _isolated_cache):
        geom = GNRFETGeometry()
        built = build_device_table(geom, VG, VD)
        clear_table_cache()  # drop in-process layer, keep disk
        loaded = build_device_table(geom, VG, VD)
        assert np.array_equal(built.vg, loaded.vg)
        assert np.array_equal(built.vd, loaded.vd)
        assert np.array_equal(built.current_a, loaded.current_a)
        assert np.array_equal(built.charge_c, loaded.charge_c)
        assert built.label == loaded.label
        assert built.gate_offset_v == loaded.gate_offset_v

    def test_artifact_written_once(self, _isolated_cache):
        build_device_table(GNRFETGeometry(), VG, VD)
        files = list((_isolated_cache / "tables").glob("*.npz"))
        assert len(files) == 1

    def test_no_cache_env_bypasses_disk(self, _isolated_cache, monkeypatch):
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        build_device_table(GNRFETGeometry(), VG, VD)
        assert not (_isolated_cache / "tables").exists()

    def test_use_cache_false_bypasses_disk(self, _isolated_cache):
        build_device_table(GNRFETGeometry(), VG, VD, use_cache=False)
        assert not (_isolated_cache / "tables").exists()

    def test_corrupt_artifact_rebuilt(self, _isolated_cache):
        geom = GNRFETGeometry()
        built = build_device_table(geom, VG, VD)
        clear_table_cache()
        key = table_cache_key(geom, VG, VD, None)
        path = _isolated_cache / "tables" / f"{key}.npz"
        assert path.is_file()
        path.write_bytes(b"torn write")
        rebuilt = build_device_table(geom, VG, VD)
        assert np.array_equal(built.current_a, rebuilt.current_a)

    def test_clear_table_cache_disk(self, _isolated_cache):
        build_device_table(GNRFETGeometry(), VG, VD)
        clear_table_cache(disk=True)
        assert list((_isolated_cache / "tables").glob("*.npz")) == []
