"""Retry ladders, failure records, checkpoints (``runtime.resilience``)."""

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError, ConvergenceError, ParallelMapError
from repro.runtime.cache import ArtifactCache
from repro.runtime import faults
from repro.runtime.resilience import (
    FailureRecord,
    SweepCheckpoint,
    checkpoint_interval,
    decode_failures,
    encode_failures,
    quarantine,
    recover_parallel,
    resume_enabled,
    run_ladder,
    strict_default,
)


@pytest.fixture(autouse=True)
def _clean_state():
    faults.disable()
    obs.reset()
    yield
    faults.disable()
    obs.disable()
    obs.reset()


def _failing(n_failures, value="ok"):
    """Thunk factory: fail the first ``n_failures`` calls, then succeed."""
    calls = {"n": 0}

    def thunk():
        calls["n"] += 1
        if calls["n"] <= n_failures:
            raise ConvergenceError(f"attempt {calls['n']} failed",
                                   residual=0.5)
        return value

    return thunk


class TestEnvDefaults:
    def test_strict_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT", raising=False)
        assert strict_default() is False
        monkeypatch.setenv("REPRO_STRICT", "1")
        assert strict_default() is True
        monkeypatch.setenv("REPRO_STRICT", "off")
        assert strict_default() is False

    def test_checkpoint_interval(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT", raising=False)
        assert checkpoint_interval() == 0
        monkeypatch.setenv("REPRO_CHECKPOINT", "5")
        assert checkpoint_interval() == 5
        monkeypatch.setenv("REPRO_CHECKPOINT", "yes")
        assert checkpoint_interval() == 1
        monkeypatch.setenv("REPRO_CHECKPOINT", "0")
        assert checkpoint_interval() == 0

    def test_resume_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        assert resume_enabled() is False
        monkeypatch.setenv("REPRO_RESUME", "1")
        assert resume_enabled() is True


class TestRunLadder:
    def test_first_rung_succeeds_without_counters(self):
        obs.enable()
        result, tried = run_ladder([("base", _failing(0))], site="scf")
        assert result == "ok"
        assert tried == ["base"]
        counters = obs.snapshot()["counters"]
        assert "resilience.retries" not in counters

    def test_escalation_counts_retries(self):
        obs.enable()
        thunk = _failing(1)
        result, tried = run_ladder([("base", thunk), ("retry", thunk)],
                                   site="scf", counter="scf.retries")
        assert result == "ok"
        assert tried == ["base", "retry"]
        counters = obs.snapshot()["counters"]
        assert counters["resilience.retries"] == 1
        assert counters["scf.retries"] == 1

    def test_exhaustion_reraises_with_context(self):
        obs.enable()
        thunk = _failing(10)
        with pytest.raises(ConvergenceError) as err:
            run_ladder([("a", thunk), ("b", thunk)], site="sr")
        assert err.value.context["ladder_site"] == "sr"
        assert err.value.context["rungs_tried"] == ["a", "b"]
        assert obs.snapshot()["counters"]["resilience.exhausted"] == 1

    def test_non_convergence_error_propagates_immediately(self):
        def boom():
            raise RuntimeError("not a convergence problem")

        with pytest.raises(RuntimeError):
            run_ladder([("a", boom), ("b", _failing(0))], site="scf")

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            run_ladder([], site="scf")


class TestFailureRecord:
    def test_from_exception_pulls_context_and_residual(self):
        exc = ConvergenceError("no luck", residual=1e-3,
                               context={"solver": "scf",
                                        "rungs_tried": ["a", "b"]})
        record = FailureRecord.from_exception(
            exc, site="scf", index=7, coords=(1, 2),
            bias={"vg": 0.1, "vd": 0.2})
        assert record.error == "ConvergenceError"
        assert record.index == 7
        assert record.coords == (1, 2)
        assert record.rungs_tried == ("a", "b")
        assert record.residual == pytest.approx(1e-3)
        assert "rungs_tried" not in record.context
        assert record.context["solver"] == "scf"

    def test_dict_round_trip(self):
        record = FailureRecord(site="scf", error="ConvergenceError",
                               message="m", index=3, coords=(0, 1),
                               bias={"vg": 0.4}, rungs_tried=("warm",),
                               residual=0.25, context={"injected": True})
        assert FailureRecord.from_dict(record.to_dict()) == record

    def test_encode_decode_array_round_trip(self):
        records = (FailureRecord(site="scf", error="E", message="m",
                                 index=0),
                   FailureRecord(site="sr", error="E", message="n",
                                 index=4, coords=(2,)))
        assert decode_failures(encode_failures(records)) == records

    def test_quarantine_records_to_obs(self):
        obs.enable()
        record = quarantine(ConvergenceError("x"), site="scf", index=5)
        assert record.index == 5
        snap = obs.snapshot()
        assert snap["counters"]["resilience.quarantined"] == 1
        assert snap["failures"][0]["index"] == 5


class TestSweepCheckpoint:
    @pytest.fixture()
    def cache(self, tmp_path):
        return ArtifactCache("checkpoints", root=tmp_path, enabled=True)

    def test_save_load_round_trip(self, cache):
        ckpt = SweepCheckpoint("key1", interval=2, cache=cache)
        done = np.array([True, False, True])
        arrays = {"a": np.arange(3.0)}
        failures = (FailureRecord(site="scf", error="E", message="m",
                                  index=1),)
        ckpt.save(done, arrays, failures)
        loaded = ckpt.load()
        assert loaded is not None
        got_done, got_arrays, got_failures = loaded
        assert np.array_equal(got_done, done)
        assert np.array_equal(got_arrays["a"], arrays["a"])
        assert got_failures == failures

    def test_due_counts_interval(self, cache):
        ckpt = SweepCheckpoint("key2", interval=2, cache=cache)
        assert not ckpt.due()
        assert ckpt.due()
        assert ckpt.due()  # still due until a save resets the counter
        ckpt.save(np.array([True]), {})
        assert not ckpt.due()
        assert ckpt.due()

    def test_disabled_interval_never_due_never_writes(self, cache):
        ckpt = SweepCheckpoint("key3", interval=0, cache=cache)
        assert not ckpt.enabled
        assert not ckpt.due()
        ckpt.save(np.array([True]), {"a": np.zeros(1)})
        assert ckpt.load() is None

    def test_reserved_array_names_rejected(self, cache):
        ckpt = SweepCheckpoint("key4", interval=1, cache=cache)
        with pytest.raises(CheckpointError):
            ckpt.save(np.array([True]), {"__done__": np.zeros(1)})

    def test_injected_write_fault_preserves_previous_snapshot(self, cache):
        ckpt = SweepCheckpoint("key5", interval=1, cache=cache)
        ckpt.save(np.array([True, False]), {"a": np.array([1.0, 0.0])})
        faults.enable("checkpoint@1")  # second write (ordinal 1) dies
        with pytest.raises(CheckpointError):
            ckpt.save(np.array([True, True]), {"a": np.array([1.0, 2.0])})
        loaded = ckpt.load()
        assert loaded is not None
        assert np.array_equal(loaded[0], [True, False])

    def test_clear_removes_snapshot(self, cache):
        ckpt = SweepCheckpoint("key6", interval=1, cache=cache)
        ckpt.save(np.array([True]), {})
        ckpt.clear()
        assert ckpt.load() is None


class TestRecoverParallel:
    def test_recomputes_only_missing_chunks(self):
        obs.enable()
        err = ParallelMapError("pool died",
                               completed={0: ["r0", "r1"], 2: ["r4"]},
                               failed={1: "crash"}, n_chunks=3,
                               n_cancelled=0, chunk_size=2)
        recomputed = []

        def fn(task):
            recomputed.append(task)
            return f"re-{task}"

        results = recover_parallel(err, fn, ["t0", "t1", "t2", "t3", "t4"])
        assert results == ["r0", "r1", "re-t2", "re-t3", "r4"]
        assert recomputed == ["t2", "t3"]
        counters = obs.snapshot()["counters"]
        assert counters["resilience.worker_crash_recoveries"] == 1
        assert counters["resilience.rows_recomputed"] == 2
