"""Deterministic fault-injection plans (``repro.runtime.faults``)."""

import pytest

from repro.errors import CheckpointError, ConvergenceError
from repro.runtime import faults


@pytest.fixture(autouse=True)
def _disarm():
    """Every test starts and ends with no fault plan armed."""
    faults.disable()
    yield
    faults.disable()


class TestParseSpec:
    def test_single_clause(self):
        assert faults.parse_spec("scf@3") == {("scf", 3): None}

    def test_multiple_indices_and_sites(self):
        plan = faults.parse_spec("scf@3,17,40;worker@1")
        assert plan == {("scf", 3): None, ("scf", 17): None,
                        ("scf", 40): None, ("worker", 1): None}

    def test_attempt_cap(self):
        assert faults.parse_spec("sr@5x2") == {("sr", 5): 2}

    def test_whitespace_tolerated(self):
        assert faults.parse_spec(" scf@1 ; checkpoint@0 ") == {
            ("scf", 1): None, ("checkpoint", 0): None}

    @pytest.mark.parametrize("bad", [
        "bogus@1", "scf", "scf@", "scf@x2", "scf@1x0", "scf@-1",
        "scf@1.5", "scf@1,,2",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            faults.parse_spec(bad)


class TestArming:
    def test_enable_sets_env_and_flag(self, monkeypatch):
        faults.enable("scf@2")
        assert faults.ACTIVE
        import os
        assert os.environ[faults.FAULTS_ENV] == "scf@2"
        faults.disable()
        assert not faults.ACTIVE
        assert faults.FAULTS_ENV not in os.environ

    def test_should_fire_only_at_armed_indices(self):
        faults.enable("scf@2")
        assert not faults.should_fire("scf", 1)
        assert faults.should_fire("scf", 2)
        assert not faults.should_fire("sr", 2)

    def test_uncapped_fires_every_attempt(self):
        faults.enable("scf@0")
        assert all(faults.should_fire("scf", 0) for _ in range(5))

    def test_capped_lets_later_attempt_succeed(self):
        faults.enable("scf@0x2")
        assert faults.should_fire("scf", 0)
        assert faults.should_fire("scf", 0)
        assert not faults.should_fire("scf", 0)

    def test_reset_attempts_rearms_caps(self):
        faults.enable("scf@0x1")
        assert faults.should_fire("scf", 0)
        assert not faults.should_fire("scf", 0)
        faults.reset_attempts()
        assert faults.should_fire("scf", 0)


class TestInject:
    def test_scf_raises_convergence_error_with_context(self):
        faults.enable("scf@4")
        with pytest.raises(ConvergenceError) as err:
            faults.inject("scf", 4, detail="VG=0.1")
        assert err.value.context["injected"] is True
        assert err.value.context["fault_site"] == "scf"
        assert err.value.context["task_index"] == 4
        assert "VG=0.1" in str(err.value)

    def test_checkpoint_raises_checkpoint_error(self):
        faults.enable("checkpoint@0")
        with pytest.raises(CheckpointError):
            faults.inject("checkpoint", 0)

    def test_unarmed_index_is_a_noop(self):
        faults.enable("scf@4")
        faults.inject("scf", 5)  # must not raise


class TestHostLevelSites:
    def test_host_level_sites_parse(self):
        plan = faults.parse_spec("host@2;stall@3x1;lease@0")
        assert plan == {("host", 2): None, ("stall", 3): 1,
                        ("lease", 0): None}

    def test_host_site_crashes_the_process(self):
        # os._exit must not run inside the test process: exercise it in
        # a child and check the documented exit code.
        import subprocess
        import sys
        code = subprocess.call([
            sys.executable, "-c",
            "from repro.runtime import faults;"
            "faults.enable('host@0');"
            "faults.inject('host', 0)"])
        assert code == 23

    def test_stall_and_lease_never_raise_from_inject(self):
        # `stall` sleeps (agent-side) and `lease` is consumed by the
        # scheduler at grant time; inject() must not raise for either.
        faults.enable("lease@0")
        faults.inject("lease", 0)

    def test_lease_site_consumed_via_should_fire(self):
        faults.enable("lease@5x1")
        assert faults.should_fire("lease", 5)
        assert not faults.should_fire("lease", 5)
