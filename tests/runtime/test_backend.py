"""Array-backend selection, fallback accounting, and numba parity.

The numba leg runs only where the optional package is installed (the CI
optional-backend job); everywhere else it skips, keeping the numpy-only
environment the tested default.
"""

import numpy as np
import pytest

from repro import obs
from repro.runtime.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ArrayBackend,
    BackendUnavailableError,
    active_backend,
    available_backends,
    backend_name,
    record_fallback,
    record_kernel,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert backend_name() == DEFAULT_BACKEND == "numpy"
        backend = active_backend()
        assert backend.name == "numpy"
        # The numpy backend exposes NO fused kernels: the inline
        # recurrences run unchanged, bit-for-bit pre-backend behavior.
        assert backend.sancho_rubio is None
        assert backend.rgf_transmission is None

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "NumPy")
        assert backend_name() == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "  ")
        assert backend_name() == "numpy"

    def test_unknown_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "torch")
        with pytest.raises(BackendUnavailableError):
            active_backend()

    def test_missing_runtime_fails_loudly(self, monkeypatch):
        """Naming an uninstalled backend must raise, never silently run
        numpy (fictitious benchmark numbers otherwise)."""
        availability = available_backends()
        assert availability["numpy"] is True
        for name in ("numba", "cupy"):
            monkeypatch.setenv(BACKEND_ENV, name)
            if availability[name]:
                assert active_backend().name == name
            else:
                with pytest.raises(BackendUnavailableError):
                    active_backend()

    def test_names_registry(self):
        assert BACKEND_NAMES == ("numpy", "numba", "cupy")


class TestCounters:
    def test_resolution_counted(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        obs.enable()
        active_backend()
        active_backend()
        assert obs.snapshot()["counters"]["backend.resolve.numpy"] == 2

    def test_numpy_fallback_not_counted(self):
        obs.enable()
        record_fallback("rgf_transmission", ArrayBackend(name="numpy"))
        assert "backend.numpy_fallbacks" not in obs.snapshot()["counters"]

    def test_foreign_fallback_counted(self):
        obs.enable()
        record_fallback("rgf_transmission", ArrayBackend(name="cupy"))
        counters = obs.snapshot()["counters"]
        assert counters["backend.numpy_fallbacks"] == 1
        assert counters["backend.cupy.fallback.rgf_transmission"] == 1

    def test_kernel_dispatch_counted(self):
        obs.enable()
        record_kernel("sancho_rubio", ArrayBackend(name="numba"))
        assert obs.snapshot()["counters"]["backend.numba.sancho_rubio"] == 1


class TestNumpyDefaultUnchanged:
    def test_transport_runs_on_inline_path(self, monkeypatch):
        """With the default backend the batched kernels take the inline
        recurrences — the dispatch must not perturb results."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        from repro.device.negf_realspace import RealSpaceGNRDevice

        energies = np.linspace(-0.8, 0.8, 21)
        device = RealSpaceGNRDevice(7, 6)
        batched = device.transport(energies, batched=True).transmission
        loop = device.transport(energies, batched=False).transmission
        np.testing.assert_allclose(batched, loop, atol=1e-8)


class TestNumbaParity:
    """Bitwise numba-vs-numpy parity (runs only where numba exists)."""

    @pytest.fixture(autouse=True)
    def _require_numba(self):
        pytest.importorskip("numba")

    def _case(self):
        from repro.device.negf_modespace import reduced_lead_blocks

        # Reduced N=12 lead blocks: small, real device matrices whose
        # decimation is known to converge across the window.
        r00, r01 = reduced_lead_blocks(12, 4)
        energies = np.linspace(-1.2, 1.2, 17)
        return energies, np.array(r00), np.array(r01), 6

    def test_sancho_rubio_bitwise(self, monkeypatch):
        from repro.negf.self_energy import sancho_rubio_surface_gf_batched

        energies, h00, h01, _ = self._case()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        ref = sancho_rubio_surface_gf_batched(energies, h00, h01)
        monkeypatch.setenv(BACKEND_ENV, "numba")
        jit = sancho_rubio_surface_gf_batched(energies, h00, h01)
        np.testing.assert_array_equal(ref, jit)

    def test_rgf_transmission_bitwise(self, monkeypatch):
        from repro.negf.greens import rgf_transmission_batched
        from repro.negf.self_energy import wide_band_self_energy

        energies, h00, h01, cells = self._case()
        diagonal = [h00.copy() for _ in range(cells)]
        coupling = [h01.copy() for _ in range(cells - 1)]
        sigma = np.broadcast_to(
            wide_band_self_energy(1.0, h00.shape[0]),
            (energies.size, h00.shape[0], h00.shape[0])).copy()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        ref = rgf_transmission_batched(energies, diagonal, coupling,
                                       sigma, sigma)
        monkeypatch.setenv(BACKEND_ENV, "numba")
        jit = rgf_transmission_batched(energies, diagonal, coupling,
                                       sigma, sigma)
        np.testing.assert_array_equal(ref, jit)

    def test_device_transport_bitwise(self, monkeypatch):
        from repro.device.negf_modespace import ModeSpaceGNRDevice

        energies = np.linspace(-0.8, 0.8, 21)
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        ref = ModeSpaceGNRDevice(12, 8, n_modes=4).transport(
            energies).transmission
        monkeypatch.setenv(BACKEND_ENV, "numba")
        jit = ModeSpaceGNRDevice(12, 8, n_modes=4).transport(
            energies).transmission
        np.testing.assert_array_equal(ref, jit)
