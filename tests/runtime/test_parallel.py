"""Tests for the process-pool execution substrate."""

import numpy as np
import pytest

from repro.errors import ParallelMapError
from repro.runtime.parallel import (
    WORKERS_ENV,
    _IN_WORKER_ENV,
    batch_indices,
    default_chunk_size,
    parallel_map,
    resolve_workers,
    spawn_seed_sequences,
)


def _square(x):
    return x * x


def _fail_on_13(x):
    if x == 13:
        raise ValueError("boom")
    return x


def _inner_worker_count(_x):
    return resolve_workers(None)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_var_used(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(None) == 6

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(3) == 3

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_nonpositive_clamps_to_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_worker_processes_never_nest(self, monkeypatch):
        """Inside a worker, workers=None must resolve to 1 even when
        REPRO_WORKERS asks for more (no nested pools)."""
        monkeypatch.setenv(WORKERS_ENV, "4")
        inner = parallel_map(_inner_worker_count, [0, 1, 2, 3], workers=2)
        assert inner == [1, 1, 1, 1]

    def test_in_worker_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert resolve_workers(8) == 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(17))
        assert parallel_map(_square, items, workers=1) == [x * x for x in items]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(23))
        serial = parallel_map(_square, items, workers=1)
        assert parallel_map(_square, items, workers=3) == serial
        assert parallel_map(_square, items, workers=3, chunk_size=1) == serial
        assert parallel_map(_square, items, workers=2, chunk_size=7) == serial

    def test_serial_fallback_accepts_closures(self):
        """workers<=1 never pickles, so lambdas are fine there."""
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=1) == [2, 3, 4]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [5], workers=4) == [25]

    def test_worker_exception_wrapped_with_salvage(self):
        """Pooled failures raise ParallelMapError chaining the original
        exception, with completed chunks salvaged on the wrapper."""
        with pytest.raises(ParallelMapError) as info:
            parallel_map(_fail_on_13, list(range(20)), workers=2,
                         chunk_size=5)
        err = info.value
        assert isinstance(err.__cause__, ValueError)
        assert "boom" in str(err.__cause__)
        assert err.n_chunks == 4
        assert err.chunk_size == 5
        # Chunk 2 (items 10..14) holds 13; the others either completed
        # or were cancelled, and every completed chunk is intact.
        assert set(err.failed) == {2}
        for k, chunk_results in err.completed.items():
            start = k * err.chunk_size
            assert chunk_results == list(range(start, start + 5))
        assert len(err.completed) + len(err.failed) + err.n_cancelled == 4

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_fail_on_13, list(range(20)), workers=1)


class TestChunking:
    def test_default_chunk_size_targets_four_per_worker(self):
        assert default_chunk_size(100, 5) == 5
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(0, 4) == 1

    def test_batch_indices_cover_exactly(self):
        for n_items, n_batches in ((10, 3), (4, 4), (7, 2), (5, 9)):
            ranges = batch_indices(n_items, n_batches)
            flat = [i for r in ranges for i in r]
            assert flat == list(range(n_items))
            sizes = [len(r) for r in ranges]
            assert max(sizes) - min(sizes) <= 1

    def test_batch_indices_empty(self):
        assert batch_indices(0, 4) == []


class TestSeedSpawning:
    def test_reproducible_per_task(self):
        a = spawn_seed_sequences(2008, 8)
        b = spawn_seed_sequences(2008, 8)
        for sa, sb in zip(a, b):
            draw_a = np.random.default_rng(sa).standard_normal(5)
            draw_b = np.random.default_rng(sb).standard_normal(5)
            assert np.array_equal(draw_a, draw_b)

    def test_tasks_get_independent_streams(self):
        seqs = spawn_seed_sequences(2008, 4)
        draws = [np.random.default_rng(s).standard_normal(5) for s in seqs]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_prefix_stability(self):
        """The first k children never depend on the total task count, so
        growing a sweep keeps earlier samples identical."""
        short = spawn_seed_sequences(7, 3)
        long = spawn_seed_sequences(7, 10)
        for s, l in zip(short, long):
            assert np.array_equal(
                np.random.default_rng(s).standard_normal(4),
                np.random.default_rng(l).standard_normal(4))
