"""Wall-clock deadline tests: run_with_deadline + per-rung ladder budgets."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.errors import ConvergenceError, DeadlineExceeded
from repro.runtime.resilience import run_ladder, run_with_deadline


class TestRunWithDeadline:
    def test_fast_thunk_passes_through(self):
        assert run_with_deadline(lambda: 42, 5.0, site="scf") == 42

    def test_preemptive_interrupt_of_wedged_thunk(self):
        # A sleep stands in for a wedged SCF loop: the SIGALRM path must
        # interrupt it mid-flight, well before it would return.
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as excinfo:
            run_with_deadline(lambda: time.sleep(30), 0.2,
                              site="scf", rung="anderson")
        assert time.perf_counter() - start < 5.0
        assert excinfo.value.site == "scf"
        assert excinfo.value.rung == "anderson"
        assert excinfo.value.deadline_s == pytest.approx(0.2)
        assert excinfo.value.elapsed_s >= 0.2

    def test_zero_deadline_expires_immediately(self):
        # deadline <= 0 means "already expired"; the distributed
        # scheduler uses this to force-expire leases under the `lease`
        # fault site, so the thunk must never run.
        ran = []
        with pytest.raises(DeadlineExceeded):
            run_with_deadline(lambda: ran.append(1), 0.0, site="sr")
        assert not ran

    def test_is_a_convergence_error(self):
        # Ladders escalate past ConvergenceError; DeadlineExceeded must
        # ride that channel so a slow rung escalates like a diverged one.
        assert issubclass(DeadlineExceeded, ConvergenceError)

    def test_alarm_state_restored_after_success(self):
        import signal
        run_with_deadline(lambda: None, 5.0, site="scf")
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_alarm_state_restored_after_expiry(self):
        import signal
        with pytest.raises(DeadlineExceeded):
            run_with_deadline(lambda: time.sleep(30), 0.1, site="scf")
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_thunk_exception_propagates_and_disarms(self):
        import signal
        with pytest.raises(ValueError, match="boom"):
            run_with_deadline(lambda: (_ for _ in ()).throw(
                ValueError("boom")), 5.0, site="scf")
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_counter_increments_when_tracing(self):
        obs.enable()
        try:
            with pytest.raises(DeadlineExceeded):
                run_with_deadline(lambda: time.sleep(30), 0.1, site="scf")
            snap = obs.snapshot()
            assert snap["counters"]["resilience.deadline_exceeded"] == 1
        finally:
            obs.disable()


class TestLadderDeadline:
    def test_slow_rung_escalates_to_fast_rung(self):
        # Rung one wedges; the per-rung budget fails it and the ladder
        # escalates, exactly as it would past a diverged solve.
        result, tried = run_ladder(
            [("wedged", lambda: time.sleep(30)),
             ("quick", lambda: "ok")],
            site="scf", deadline_s=0.2)
        assert result == "ok"
        assert tried == ["wedged", "quick"]

    def test_all_rungs_over_budget_exhausts(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            run_ladder(
                [("a", lambda: time.sleep(30)),
                 ("b", lambda: time.sleep(30))],
                site="sr", deadline_s=0.1)
        assert list(excinfo.value.context["rungs_tried"]) == ["a", "b"]
        assert excinfo.value.context["ladder_site"] == "sr"

    def test_no_deadline_means_unbudgeted(self):
        result, tried = run_ladder(
            [("only", lambda: 7)], site="scf")
        assert (result, tried) == (7, ["only"])

    def test_deadline_exceeded_carries_rung_name(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            run_ladder([("anderson", lambda: time.sleep(30))],
                       site="scf", deadline_s=0.1)
        assert excinfo.value.rung == "anderson"
