"""Wire-protocol tests: round-trips, validation, and garbage fuzzing."""

from __future__ import annotations

import json
import random
import string

import pytest

from repro.errors import FrameError
from repro.runtime.protocol import (
    FRAME_FIELDS,
    PROTOCOL_VERSION,
    check_hello,
    decode_frame,
    encode_frame,
    pack_payload,
    unpack_payload,
)


class TestPayload:
    def test_round_trip(self):
        obj = {"a": [1, 2.5, None], "b": ("x", b"\x00\xff")}
        assert unpack_payload(pack_payload(obj)) == obj

    def test_payload_is_one_ascii_line(self):
        text = pack_payload(list(range(100)))
        assert "\n" not in text
        assert text.isascii()

    def test_corrupt_base64_raises_frame_error(self):
        with pytest.raises(FrameError, match="corrupt frame payload"):
            unpack_payload("not-base64!!!")

    def test_truncated_pickle_raises_frame_error(self):
        text = pack_payload([1, 2, 3])
        with pytest.raises(FrameError):
            unpack_payload(text[: len(text) // 2] + "==")


class TestRoundTrip:
    EXAMPLES = {
        "hello": {"v": PROTOCOL_VERSION, "pid": 4321},
        "lease": {"lease_id": 7, "indices": [3, 4, 5],
                  "payload": pack_payload(("fn", [1])), "heartbeat_s": 1.0,
                  "deadline_s": None},
        "heartbeat": {"lease_id": 7, "done": 2},
        "result": {"lease_id": 7, "payload": pack_payload([9]),
                   "task_s": [0.25], "obs": None},
        "error": {"lease_id": 7, "kind": "task", "error": "ValueError: x"},
        "shutdown": {},
    }

    @pytest.mark.parametrize("frame_type", sorted(FRAME_FIELDS))
    def test_every_frame_type_round_trips(self, frame_type):
        fields = self.EXAMPLES[frame_type]
        line = encode_frame(frame_type, **fields)
        assert "\n" not in line
        frame = decode_frame(line)
        assert frame["type"] == frame_type
        for key, value in fields.items():
            assert frame[key] == value

    def test_bytes_lines_decode(self):
        line = encode_frame("heartbeat", lease_id=1, done=0)
        assert decode_frame(line.encode("utf-8"))["lease_id"] == 1

    def test_examples_cover_the_vocabulary(self):
        assert sorted(self.EXAMPLES) == sorted(FRAME_FIELDS)


class TestEncodeValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(FrameError, match="unknown frame type"):
            encode_frame("gossip", lease_id=1)

    def test_missing_field_rejected(self):
        with pytest.raises(FrameError, match="missing"):
            encode_frame("heartbeat", lease_id=1)

    def test_extra_field_rejected(self):
        with pytest.raises(FrameError, match="unexpected"):
            encode_frame("shutdown", surprise=True)


class TestDecodeValidation:
    @pytest.mark.parametrize("line", [
        "", "   ", "not json", "[1, 2]", '"a string"', "null",
        '{"no_type": 1}', '{"type": "gossip"}', '{"type": 42}',
        '{"type": "heartbeat", "lease_id": 1}',
        '{"type": "heartbeat", "lease_id": "one", "done": 0}',
        '{"type": "hello", "v": "1", "pid": 1}',
        '{"type": "lease", "lease_id": 1, "indices": "0-3", '
        '"payload": "", "heartbeat_s": 1.0, "deadline_s": null}',
        '{"type": "lease", "lease_id": 1, "indices": [0, "x"], '
        '"payload": "", "heartbeat_s": 1.0, "deadline_s": null}',
        '{"type": "result", "lease_id": 1, "payload": "", '
        '"task_s": 0.5, "obs": null}',
        '{"type": "error", "lease_id": 1, "kind": "task", "error": 5}',
        b"\xff\xfe garbage bytes",
    ])
    def test_malformed_lines_raise_frame_error(self, line):
        with pytest.raises(FrameError):
            decode_frame(line)

    def test_fuzz_random_garbage_never_escapes_frame_error(self):
        # The scheduler maps FrameError to agent failure; any other
        # exception class would crash the dispatch loop instead.
        rng = random.Random(20260808)
        alphabet = string.printable
        for _ in range(300):
            line = "".join(rng.choice(alphabet)
                           for _ in range(rng.randrange(0, 120)))
            try:
                frame = decode_frame(line)
            except FrameError:
                continue
            # Vanishingly unlikely, but if it parses it must be valid.
            assert frame["type"] in FRAME_FIELDS

    def test_fuzz_field_dropout(self):
        # Remove each required field in turn from a valid frame.
        base = {"type": "lease", "lease_id": 1, "indices": [0],
                "payload": "", "heartbeat_s": 1.0, "deadline_s": None}
        for field in FRAME_FIELDS["lease"]:
            broken = {k: v for k, v in base.items() if k != field}
            with pytest.raises(FrameError):
                decode_frame(json.dumps(broken))


class TestHello:
    def test_matching_version_passes(self):
        frame = decode_frame(encode_frame(
            "hello", v=PROTOCOL_VERSION, pid=1))
        check_hello(frame)

    def test_version_skew_rejected(self):
        frame = decode_frame(encode_frame(
            "hello", v=PROTOCOL_VERSION + 1, pid=1))
        with pytest.raises(FrameError, match="version mismatch"):
            check_hello(frame)
