"""Parallel execution must be bit-for-bit equal to serial at every layer.

These are the contract tests of the tentpole: the device I-V grid, the
V_DD-V_T exploration plane and the ring-oscillator Monte Carlo all run
once serially and once across a worker pool, and every output array must
be *identical* (``np.array_equal``, not ``allclose``).
"""

import numpy as np
import pytest

from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv
from repro.exploration.sweep import sweep_vdd_vt
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo

VG = np.array([0.0, 0.15, 0.3, 0.45])
VD = np.array([0.0, 0.25, 0.5])


class TestSweepIV:
    def test_parallel_equals_serial_bitwise(self):
        geom = GNRFETGeometry()
        serial = sweep_iv(geom, VG, VD, workers=1)
        parallel = sweep_iv(geom, VG, VD, workers=3)
        assert np.array_equal(serial.current_a, parallel.current_a)
        assert np.array_equal(serial.charge_c, parallel.charge_c)
        assert np.array_equal(serial.midgap_ev, parallel.midgap_ev)

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        geom = GNRFETGeometry(n_index=9)
        via_env = sweep_iv(geom, VG[:2], VD[:2])
        monkeypatch.delenv("REPRO_WORKERS")
        serial = sweep_iv(geom, VG[:2], VD[:2])
        assert np.array_equal(via_env.current_a, serial.current_a)


class TestSweepVddVt:
    def test_parallel_equals_serial_bitwise(self, tech):
        vt = np.array([0.08, 0.15, 0.22])
        vdd = np.array([0.25, 0.4])
        serial = sweep_vdd_vt(tech, vt, vdd, workers=1)
        parallel = sweep_vdd_vt(tech, vt, vdd, workers=3)
        for name in ("frequency_hz", "edp_j_s", "snm_v", "total_power_w",
                     "static_power_w"):
            assert np.array_equal(getattr(serial, name),
                                  getattr(parallel, name), equal_nan=True), name


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def serial(self, tech):
        return run_ring_oscillator_monte_carlo(tech, n_samples=40,
                                               seed=2008, workers=1)

    def test_fixed_seed_identical_across_worker_counts(self, tech, serial):
        parallel = run_ring_oscillator_monte_carlo(tech, n_samples=40,
                                                   seed=2008, workers=4)
        assert np.array_equal(serial.frequencies_hz, parallel.frequencies_hz)
        assert np.array_equal(serial.dynamic_power_w,
                              parallel.dynamic_power_w)
        assert np.array_equal(serial.static_power_w, parallel.static_power_w)
        assert serial.variant_counts == parallel.variant_counts
        assert serial.nominal_frequency_hz == parallel.nominal_frequency_hz

    def test_sample_prefix_independent_of_sample_count(self, tech, serial):
        """Seeds spawn per sample index, so the first N samples of a
        longer run replicate a shorter run exactly."""
        longer = run_ring_oscillator_monte_carlo(tech, n_samples=55,
                                                 seed=2008, workers=2)
        assert np.array_equal(serial.frequencies_hz,
                              longer.frequencies_hz[:40])

    def test_different_seeds_differ(self, tech, serial):
        other = run_ring_oscillator_monte_carlo(tech, n_samples=40,
                                                seed=1234, workers=2)
        assert not np.array_equal(serial.frequencies_hz,
                                  other.frequencies_hz)
