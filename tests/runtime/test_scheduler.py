"""Tests for the scheduler seam (``runtime.scheduler``)."""

import pytest

from repro.errors import ParallelMapError
from repro.runtime.parallel import guided_chunk_plan, in_worker, parallel_map
from repro.runtime.resilience import recover_parallel
from repro.runtime.scheduler import (
    LocalScheduler,
    Scheduler,
    resolve_scheduler,
    scheduler_kind,
)


def _square(x):
    return x * x


def _fail_on_13(x):
    if x == 13:
        raise ValueError("boom")
    return x


def _flaky_13(x):
    """Fails on 13 only inside pool workers; the parent retry succeeds."""
    if x == 13 and in_worker():
        raise ValueError("boom")
    return x * x


class TestGuidedChunkPlan:
    def test_partitions_exactly(self):
        for n in (1, 2, 7, 16, 100, 1023):
            for workers in (1, 2, 4, 8):
                plan = guided_chunk_plan(n, workers)
                assert sum(plan) == n
                assert all(size >= 1 for size in plan)

    def test_sizes_never_increase(self):
        plan = guided_chunk_plan(200, 4)
        assert plan == sorted(plan, reverse=True)
        # Guided scheduling: early chunks are large (low dispatch
        # overhead), late chunks small (load balancing at the tail).
        assert plan[0] > plan[-1]
        assert plan[-1] == 1

    def test_first_chunk_is_half_share(self):
        # ceil(remaining / (2 * workers)) at the first step.
        assert guided_chunk_plan(100, 4)[0] == 13
        assert guided_chunk_plan(8, 4)[0] == 1

    def test_empty_and_invalid(self):
        assert guided_chunk_plan(0, 4) == []
        with pytest.raises(ValueError):
            guided_chunk_plan(-1, 4)


class TestChunkPlanDispatch:
    def test_plan_matches_serial(self):
        items = list(range(23))
        plan = guided_chunk_plan(len(items), 2)
        assert parallel_map(_square, items, workers=2,
                            chunk_plan=plan) == [x * x for x in items]

    def test_plan_must_partition(self):
        with pytest.raises(ValueError, match="partition"):
            parallel_map(_square, list(range(10)), workers=2,
                         chunk_plan=[4, 4])

    def test_plan_exclusive_with_chunk_size(self):
        with pytest.raises(ValueError):
            parallel_map(_square, list(range(10)), workers=2,
                         chunk_size=5, chunk_plan=[5, 5])

    def test_bad_plan_rejected_even_in_serial_fallback(self):
        # Validation happens before the workers<=1 early return, so a
        # buggy plan cannot hide behind REPRO_WORKERS=1.
        with pytest.raises(ValueError, match="partition"):
            parallel_map(_square, list(range(10)), workers=1,
                         chunk_plan=[3, 3])

    def test_error_carries_offsets(self):
        plan = [7, 7, 6]  # item 13 sits at offset 6 in chunk 1
        with pytest.raises(ParallelMapError) as info:
            parallel_map(_fail_on_13, list(range(20)), workers=2,
                         chunk_plan=plan)
        err = info.value
        assert err.chunk_offsets == (0, 7, 14)
        assert 1 in err.failed

    def test_recover_uses_offsets(self):
        # Non-uniform plan: chunk 2 starts at offset 10, while the
        # uniform fallback (k * chunk_size with chunk_size=3) would put
        # it at 6 — recovery must follow the recorded offsets.
        items = list(range(20))
        with pytest.raises(ParallelMapError) as info:
            parallel_map(_flaky_13, items, workers=2,
                         chunk_plan=[3, 7, 10])
        err = info.value
        assert err.chunk_offsets == (0, 3, 10)
        assert 2 in err.failed
        recovered = recover_parallel(err, _flaky_13, items)
        assert recovered == [x * x for x in items]


class TestLocalScheduler:
    def test_run_matches_comprehension(self):
        tasks = list(range(17))
        for workers in (1, 2):
            sched = LocalScheduler(workers=workers)
            assert sched.run(_square, tasks) == [x * x for x in tasks]

    def test_explicit_chunk_size_respected(self):
        sched = LocalScheduler(workers=2)
        tasks = list(range(10))
        assert sched.run(_square, tasks,
                         chunk_size=1) == [x * x for x in tasks]

    def test_recovers_pool_failures(self):
        # _fail_on_13 raises inside the pool; the scheduler salvages
        # completed chunks and re-runs the rest serially.
        sched = LocalScheduler(workers=2)
        tasks = list(range(20))
        with pytest.raises(ValueError, match="boom"):
            sched.run(_fail_on_13, tasks)
        assert sched.run(_square, tasks) == [x * x for x in tasks]

    def test_strict_propagates_pool_error(self):
        sched = LocalScheduler(workers=2)
        with pytest.raises(ParallelMapError):
            sched.run(_fail_on_13, list(range(20)), strict=True,
                      chunk_size=5)

    def test_repr_names_workers(self):
        assert "workers=3" in repr(LocalScheduler(workers=3))


class TestResolveScheduler:
    def test_default_is_local(self):
        sched = resolve_scheduler(None, workers=2)
        assert isinstance(sched, LocalScheduler)
        assert scheduler_kind(sched) == "LocalScheduler"

    def test_explicit_instance_wins(self):
        class Recording(Scheduler):
            def __init__(self):
                self.calls = 0

            def run(self, fn, tasks, *, strict=False, chunk_size=None):
                self.calls += 1
                return [fn(task) for task in tasks]

        rec = Recording()
        assert resolve_scheduler(rec, workers=8) is rec
        assert rec.run(_square, [1, 2]) == [1, 4]
        assert rec.calls == 1

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Scheduler().run(_square, [1])
