"""Distributed-scheduler tests: parity, chaos, fallback, resolution.

Task functions live at module level: lease payloads are pickled by
module reference (the same constraint ``multiprocessing`` spawn puts on
pool workers), so a function defined inside a test body would not
resolve inside an agent process.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro import obs
from repro.runtime import faults
from repro.runtime.distributed import (
    AGENT_ARGV,
    DistributedScheduler,
    agent_command,
    distributed_available,
    heartbeat_default,
    lease_timeout_default,
    parse_hosts,
)
from repro.runtime.scheduler import (
    LocalScheduler,
    resolve_scheduler,
    SCHEDULER_ENV,
)


def _square(x):
    return x * x


def _fail_on_7(x):
    if x == 7:
        raise ValueError("boom at 7")
    return x + 1


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.disable()
    yield
    faults.disable()




def _chaos_scheduler(**overrides):
    """A scheduler tuned so chaos tests converge in seconds, not minutes."""
    kwargs = dict(hosts="local*2", heartbeat_s=0.1, lease_timeout_s=30.0,
                  redispatch_cap=3, quarantine_after=2,
                  backoff_base_s=0.01, hello_timeout_s=20.0)
    kwargs.update(overrides)
    return DistributedScheduler(**kwargs)


class TestParseHosts:
    def test_single_local(self):
        assert parse_hosts("local") == ["local"]

    def test_multiplier_expands(self):
        assert parse_hosts("local*3") == ["local", "local", "local"]

    def test_comma_separated(self):
        assert parse_hosts("local, ssh a@b") == ["local", "ssh a@b"]

    def test_semicolon_wins_so_commands_may_contain_commas(self):
        assert parse_hosts("ssh -o Opt=a,b host; local") == [
            "ssh -o Opt=a,b host", "local"]

    def test_mixed_multiplier(self):
        assert parse_hosts("local*2;ssh box") == ["local", "local",
                                                  "ssh box"]

    def test_blank_entries_dropped(self):
        assert parse_hosts(" ; local ;; ") == ["local"]

    def test_bad_multiplier_raises(self):
        with pytest.raises(ValueError):
            parse_hosts("local*0")


class TestAgentCommand:
    def test_local_uses_this_interpreter(self):
        argv = agent_command("local")
        assert argv[0] == sys.executable
        assert argv[-3:] == ["-m", "repro.runtime.agent", ][-3:] or True
        assert argv == [sys.executable, "-u", "-m", "repro.runtime.agent"]

    def test_template_appends_agent_invocation(self):
        argv = agent_command("ssh user@box")
        assert argv[:2] == ["ssh", "user@box"]
        assert argv[2:] == list(AGENT_ARGV)

    def test_explicit_agent_token_substitutes(self):
        argv = agent_command("ssh box nice -n 19 {agent}")
        assert argv[:5] == ["ssh", "box", "nice", "-n", "19"]
        assert argv[5:] == list(AGENT_ARGV)

    def test_empty_entry_raises(self):
        with pytest.raises(ValueError):
            agent_command("   ")


class TestEnvDefaults:
    def test_lease_timeout_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TIMEOUT", "12.5")
        assert lease_timeout_default() == 12.5

    def test_lease_timeout_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TIMEOUT", "soon")
        with pytest.raises(ValueError):
            lease_timeout_default()

    def test_heartbeat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0.25")
        assert heartbeat_default() == 0.25

    def test_distributed_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        assert not distributed_available()
        monkeypatch.setenv("REPRO_HOSTS", "local*2")
        assert distributed_available()


class TestParity:
    def test_bitwise_parity_with_local(self):
        tasks = list(range(23))
        expected = LocalScheduler().run(_square, tasks)
        with _chaos_scheduler(hosts="local*3") as sched:
            assert sched.run(_square, tasks) == expected

    def test_empty_wave(self):
        with _chaos_scheduler() as sched:
            assert sched.run(_square, []) == []

    def test_agents_persist_across_waves(self):
        with _chaos_scheduler() as sched:
            assert sched.run(_square, [1, 2, 3]) == [1, 4, 9]
            assert sched.run(_square, [4, 5]) == [16, 25]

    def test_explicit_chunk_size(self):
        with _chaos_scheduler() as sched:
            assert sched.run(_square, list(range(10)),
                             chunk_size=1) == [x * x for x in range(10)]


class TestChaos:
    def test_agent_crash_mid_wave_is_bitwise_invisible(self):
        # host@5 hard-kills (os._exit) every agent that picks up task 5;
        # each relaunched agent re-arms from the environment, so the
        # lease exhausts its re-dispatch cap and the parent computes it
        # locally.  Results must not change.
        faults.enable("host@5")
        tasks = list(range(12))
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler() as sched:
                result = sched.run(_square, tasks, chunk_size=1)
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [x * x for x in tasks]
        counters = snap["counters"]
        assert counters["scheduler.agent_crashes"] >= 1
        assert counters["scheduler.leases_parked"] >= 1
        assert counters["scheduler.local_fallbacks"] >= 1

    def test_stalled_agent_is_detected_and_wave_completes(self):
        # stall@3 silences heartbeats and sleeps; only the scheduler's
        # missed-heartbeat window may end it.
        faults.enable("stall@3")
        tasks = list(range(8))
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler(redispatch_cap=2) as sched:
                result = sched.run(_square, tasks, chunk_size=1)
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [x * x for x in tasks]
        assert snap["counters"]["scheduler.agent_stalls"] >= 1

    def test_forced_lease_expiry_then_success(self):
        # lease@0x2: the first two grants of task 0's lease are issued
        # already expired; the agent reports cooperatively (no kill, no
        # strike) and the third grant succeeds on an agent.
        faults.enable("lease@0x2")
        tasks = list(range(6))
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler() as sched:
                result = sched.run(_square, tasks, chunk_size=1)
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [x * x for x in tasks]
        counters = snap["counters"]
        assert counters["scheduler.leases_expired"] == 2
        assert counters["scheduler.leases_redispatched"] >= 2
        # Cooperative expiry must not kill agents.
        assert counters.get("scheduler.agent_crashes", 0) == 0

    def test_forced_expiry_past_cap_parks_and_falls_back(self):
        faults.enable("lease@0")  # every grant expires
        tasks = list(range(4))
        with _chaos_scheduler() as sched:
            assert sched.run(_square, tasks,
                             chunk_size=1) == [x * x for x in tasks]


class TestDegradation:
    def test_no_hosts_falls_back_to_local(self):
        sched = DistributedScheduler(hosts=[])
        obs.enable()
        obs.reset()
        try:
            result = sched.run(_square, [1, 2, 3])
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [1, 4, 9]
        assert snap["counters"]["scheduler.local_fallbacks"] == 1
        assert snap["annotations"]["scheduler_degraded"] == \
            "no hosts configured"

    def test_unlaunchable_hosts_quarantine_then_fall_back(self):
        sched = DistributedScheduler(
            hosts=["/nonexistent-agent-binary"] * 2,
            quarantine_after=1, backoff_base_s=0.01)
        obs.enable()
        obs.reset()
        try:
            with sched:
                result = sched.run(_square, [1, 2, 3, 4])
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [1, 4, 9, 16]
        counters = snap["counters"]
        assert counters["scheduler.agents_quarantined"] == 2
        assert counters["scheduler.local_fallbacks"] == 1
        failures = snap["failures"]
        assert any(f["site"] == "agent" for f in failures)

    def test_all_agents_dying_forever_still_completes(self):
        # Agents that exit immediately after launch: every lease grant
        # path dies, strikes quarantine both slots, the wave breaks out
        # and the parent computes everything.
        entry = f"{sys.executable} -c 'import sys; sys.exit(9)' --"
        with DistributedScheduler(hosts=[entry, entry],
                                  quarantine_after=1,
                                  backoff_base_s=0.01) as sched:
            assert sched.run(_square, list(range(6))) == [
                x * x for x in range(6)]

    def test_hello_version_mismatch_is_fatal_quarantine(self):
        script = ('import json,time;'
                  'print(json.dumps({"type":"hello","v":99,"pid":1}),'
                  'flush=True); time.sleep(20)')
        entry = f"{sys.executable} -c '{script}' --"
        obs.enable()
        obs.reset()
        try:
            with DistributedScheduler(hosts=[entry],
                                      backoff_base_s=0.01) as sched:
                result = sched.run(_square, [2, 3])
            snap = obs.snapshot()
        finally:
            obs.disable()
        assert result == [4, 9]
        counters = snap["counters"]
        assert counters["scheduler.protocol_errors"] >= 1
        assert counters["scheduler.agents_quarantined"] == 1

    def test_garbage_emitting_agent_is_contained(self):
        script = ('import time;'
                  'print("!!not a frame!!", flush=True); time.sleep(20)')
        entry = f"{sys.executable} -c '{script}' --"
        with DistributedScheduler(hosts=[entry], quarantine_after=1,
                                  backoff_base_s=0.01) as sched:
            assert sched.run(_square, [5]) == [25]


class TestTaskErrors:
    def test_task_exception_reraises_faithfully(self):
        # A deterministic task failure is never re-dispatched; the
        # parent recomputes the lease locally and the original exception
        # class/message surface to the caller.
        with _chaos_scheduler() as sched:
            with pytest.raises(ValueError, match="boom at 7"):
                sched.run(_fail_on_7, list(range(10)), chunk_size=1,
                          strict=True)

    def test_task_error_does_not_strike_the_agent(self):
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler() as sched:
                with pytest.raises(ValueError):
                    sched.run(_fail_on_7, [7], strict=True)
            snap = obs.snapshot()
        finally:
            obs.disable()
        counters = snap["counters"]
        assert counters["scheduler.task_errors"] == 1
        assert counters.get("scheduler.agents_quarantined", 0) == 0
        assert counters.get("scheduler.leases_redispatched", 0) == 0


class TestObservability:
    def test_manifest_rollups_and_annotations(self):
        from repro.obs.manifest import build_manifest
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler() as sched:
                sched.run(_square, list(range(5)))
            manifest = build_manifest(label="test", config={})
        finally:
            obs.disable()
        rollups = manifest["rollups"]
        assert rollups["scheduler_kind"] == "DistributedScheduler"
        assert rollups["scheduler_agents"] == 2
        assert rollups["leases_granted"] >= 1
        assert manifest["annotations"]["scheduler_kind"] == \
            "DistributedScheduler"

    def test_worker_obs_payloads_are_absorbed(self):
        obs.enable()
        obs.reset()
        try:
            with _chaos_scheduler() as sched:
                sched.run(_square, list(range(4)))
            snap = obs.snapshot()
        finally:
            obs.disable()
        # Agent-side spans/counters ride back through result frames.
        assert snap["counters"]["scheduler.leases_granted"] >= 1


class TestResolveScheduler:
    def test_default_is_local(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert isinstance(resolve_scheduler(), LocalScheduler)

    def test_env_selects_distributed(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "distributed")
        sched = resolve_scheduler()
        assert isinstance(sched, DistributedScheduler)

    def test_explicit_instance_wins(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "distributed")
        mine = LocalScheduler()
        assert resolve_scheduler(mine) is mine

    def test_worker_processes_never_distribute(self, monkeypatch):
        from repro.runtime.parallel import _IN_WORKER_ENV
        monkeypatch.setenv(SCHEDULER_ENV, "distributed")
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert isinstance(resolve_scheduler(), LocalScheduler)

    def test_unknown_value_raises(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "quantum")
        with pytest.raises(ValueError, match="REPRO_SCHEDULER"):
            resolve_scheduler()


class TestShutdown:
    def test_close_terminates_agents(self):
        sched = _chaos_scheduler()
        sched.run(_square, [1, 2])
        procs = [a.proc for a in sched._agents if a.proc is not None]
        assert procs
        sched.close()
        time.sleep(0.1)
        assert all(p.poll() is not None for p in procs)

    def test_close_is_idempotent(self):
        sched = _chaos_scheduler()
        sched.run(_square, [1])
        sched.close()
        sched.close()


@pytest.mark.slow
class TestRealSweepFallback:
    def test_characterize_fig3_fast_via_distributed(self):
        # A real experiment through the distributed seam must match the
        # committed golden exactly (determinism is host-count-invariant).
        from repro.characterize.runner import characterize
        with DistributedScheduler(hosts="local*2") as sched:
            run = characterize(["fig3"], fast=True, scheduler=sched)
        assert run.ok, run.diffs["fig3"]
