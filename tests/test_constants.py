"""Unit and property tests for physical constants and helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants as c


class TestConstants:
    def test_landauer_prefactor_matches_conductance_quantum(self):
        # 2e^2/h = prefactor (A/eV): one eV of window at T=1 carries G0 * 1V.
        assert c.LANDAUER_PREFACTOR_A_PER_EV == pytest.approx(c.G_QUANTUM)

    def test_conductance_quantum_value(self):
        assert c.G_QUANTUM == pytest.approx(7.748e-5, rel=1e-3)

    def test_thermal_energy_room(self):
        assert c.KT_ROOM_EV == pytest.approx(0.02585, rel=1e-3)

    def test_armchair_period(self):
        assert c.ARMCHAIR_PERIOD_NM == pytest.approx(0.426, rel=1e-3)

    def test_fermi_velocity_scale(self):
        # Graphene v_F ~ 1e6 m/s = 1e15 nm/s.
        v_m_per_s = c.FERMI_VELOCITY_NM_PER_S * 1e-9
        assert 0.7e6 < v_m_per_s < 1.1e6


class TestThermalEnergy:
    def test_room_temperature(self):
        assert c.thermal_energy_ev(300.0) == pytest.approx(c.KT_ROOM_EV)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -300.0])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            c.thermal_energy_ev(bad)


class TestFermiDirac:
    def test_half_at_mu(self):
        assert c.fermi_dirac(0.3, 0.3) == pytest.approx(0.5)

    def test_limits(self):
        assert c.fermi_dirac(10.0, 0.0) == pytest.approx(0.0, abs=1e-12)
        assert c.fermi_dirac(-10.0, 0.0) == pytest.approx(1.0, abs=1e-12)

    def test_no_overflow_far_from_mu(self):
        e = np.array([-500.0, 500.0])
        f = c.fermi_dirac(e, 0.0)
        assert np.all(np.isfinite(f))
        assert f[0] == pytest.approx(1.0)
        assert f[1] == pytest.approx(0.0, abs=1e-200)

    def test_rejects_nonpositive_kt(self):
        with pytest.raises(ValueError):
            c.fermi_dirac(0.0, 0.0, kt_ev=0.0)

    @given(st.floats(-5, 5), st.floats(-5, 5))
    def test_bounded(self, e, mu):
        f = c.fermi_dirac(e, mu)
        assert 0.0 <= f <= 1.0

    @given(st.floats(-2, 2), st.floats(min_value=1e-3, max_value=1.0))
    def test_monotone_decreasing_in_energy(self, mu, kt):
        es = np.linspace(mu - 1.0, mu + 1.0, 50)
        f = c.fermi_dirac(es, mu, kt)
        assert np.all(np.diff(f) <= 1e-12)

    @given(st.floats(-2, 2))
    def test_particle_hole_symmetry(self, de):
        # f(mu + de) + f(mu - de) = 1
        mu = 0.37
        total = c.fermi_dirac(mu + de, mu) + c.fermi_dirac(mu - de, mu)
        assert total == pytest.approx(1.0, abs=1e-12)


class TestGNRWidth:
    def test_paper_value_n9(self):
        # Paper: N=9 has a width of ~1.1 nm (we get 0.98 from the dimer
        # line definition; same 1 nm scale).
        assert c.gnr_width_nm(9) == pytest.approx(0.984, abs=0.01)

    def test_paper_increment_per_family_step(self):
        # "the index is increased in steps of 3, or equivalently, by an
        # incremental width of 3.7 A"
        dw = c.gnr_width_nm(12) - c.gnr_width_nm(9)
        assert dw == pytest.approx(0.369, abs=0.002)

    @given(st.integers(min_value=2, max_value=200))
    def test_monotone_in_index(self, n):
        assert c.gnr_width_nm(n + 1) > c.gnr_width_nm(n)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            c.gnr_width_nm(1)
