"""Tests for the calibrated PTM node parameters (Table 1 CMOS columns)."""

import pytest

from repro.cmos.circuits import (
    cmos_inverter_snm,
    cmos_inverter_static_power_w,
    estimate_cmos_ring_oscillator,
)
from repro.cmos.ptm import PTM_NODES, ptm_node
from repro.device.calibration import PAPER_TABLE1_CMOS


class TestNodeLookup:
    def test_all_paper_nodes_present(self):
        assert set(PTM_NODES) == {22, 32, 45}

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            ptm_node(65)

    def test_pmos_weaker_than_nmos(self):
        for node in PTM_NODES.values():
            assert (node.pmos.b_a_per_valpha
                    < node.nmos.b_a_per_valpha)


class TestTable1Calibration:
    """Every CMOS cell of the paper's Table 1 within 25% (frequency) and
    30% (EDP); SNM within 0.06 V."""

    @pytest.mark.parametrize("node_nm", [22, 32, 45])
    @pytest.mark.parametrize("vdd", [0.8, 0.6, 0.4])
    def test_frequency(self, node_nm, vdd):
        target, _, _ = PAPER_TABLE1_CMOS[node_nm][vdd]
        m = estimate_cmos_ring_oscillator(ptm_node(node_nm), vdd)
        assert m.frequency_hz / 1e9 == pytest.approx(target, rel=0.25)

    @pytest.mark.parametrize("node_nm", [22, 32, 45])
    @pytest.mark.parametrize("vdd", [0.8, 0.6, 0.4])
    def test_edp(self, node_nm, vdd):
        _, target, _ = PAPER_TABLE1_CMOS[node_nm][vdd]
        m = estimate_cmos_ring_oscillator(ptm_node(node_nm), vdd)
        assert m.edp_j_s * 1e27 == pytest.approx(target, rel=0.30)

    @pytest.mark.parametrize("node_nm", [22, 32, 45])
    @pytest.mark.parametrize("vdd", [0.8, 0.6, 0.4])
    def test_snm(self, node_nm, vdd):
        _, _, target = PAPER_TABLE1_CMOS[node_nm][vdd]
        snm = cmos_inverter_snm(ptm_node(node_nm), vdd)
        assert snm == pytest.approx(target, abs=0.06)


class TestPaperOrderings:
    def test_smaller_node_faster(self):
        f = {n: estimate_cmos_ring_oscillator(ptm_node(n), 0.8).frequency_hz
             for n in (22, 32, 45)}
        assert f[22] > f[32] > f[45]

    def test_smaller_node_lower_edp(self):
        e = {n: estimate_cmos_ring_oscillator(ptm_node(n), 0.6).edp_j_s
             for n in (22, 32, 45)}
        assert e[22] < e[32] < e[45]

    def test_edp_optimum_at_0p6(self):
        """Paper: "V_DD = 0.6V has the optimum value of EDP" per node."""
        for n in (22, 32, 45):
            edps = {v: estimate_cmos_ring_oscillator(ptm_node(n), v).edp_j_s
                    for v in (0.8, 0.6, 0.4)}
            assert edps[0.6] == min(edps.values())

    def test_best_performance_at_0p8(self):
        """"V_DD = 0.8V provides the best performance"."""
        for n in (22, 32, 45):
            fs = {v: estimate_cmos_ring_oscillator(
                ptm_node(n), v).frequency_hz for v in (0.8, 0.6, 0.4)}
            assert fs[0.8] == max(fs.values())

    def test_least_power_at_0p4(self):
        """"V_DD = 0.4V consumes the least power"."""
        for n in (22, 32, 45):
            ps = {v: estimate_cmos_ring_oscillator(
                ptm_node(n), v).total_power_w for v in (0.8, 0.6, 0.4)}
            assert ps[0.4] == min(ps.values())


class TestLeakage:
    def test_static_power_positive(self):
        for n in (22, 32, 45):
            assert cmos_inverter_static_power_w(ptm_node(n), 0.8) > 0.0

    def test_leakage_grows_toward_smaller_nodes(self):
        p = {n: cmos_inverter_static_power_w(ptm_node(n), 0.8)
             for n in (22, 32, 45)}
        assert p[22] > p[45]
