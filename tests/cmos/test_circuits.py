"""Tests for CMOS circuit metrics on the shared engine."""

import numpy as np
import pytest

from repro.cmos.circuits import (
    cmos_inverter_snm,
    cmos_inverter_static_power_w,
    cmos_inverter_vtc,
    estimate_cmos_ring_oscillator,
)
from repro.cmos.ptm import ptm_node


@pytest.fixture(scope="module")
def node22():
    return ptm_node(22)


class TestCMOSInverter:
    def test_vtc_rail_to_rail(self, node22):
        vin, vout = cmos_inverter_vtc(node22, 0.8)
        assert vout[0] > 0.78
        assert vout[-1] < 0.02

    def test_vtc_monotone(self, node22):
        _, vout = cmos_inverter_vtc(node22, 0.8)
        assert np.all(np.diff(vout) <= 1e-9)

    def test_high_gain_transition(self, node22):
        vin, vout = cmos_inverter_vtc(node22, 0.8)
        gain = np.abs(np.gradient(vout, vin)).max()
        assert gain > 5.0

    def test_snm_reasonable_fraction_of_vdd(self, node22):
        snm = cmos_inverter_snm(node22, 0.8)
        assert 0.25 < snm / 0.8 < 0.5

    def test_static_power_well_below_dynamic(self, node22):
        m = estimate_cmos_ring_oscillator(node22, 0.8)
        assert m.static_power_w < 0.05 * m.dynamic_power_w


class TestRingEstimate:
    def test_monotone_frequency_in_vdd(self, node22):
        fs = [estimate_cmos_ring_oscillator(node22, v).frequency_hz
              for v in (0.4, 0.6, 0.8)]
        assert fs[0] < fs[1] < fs[2]

    def test_raises_below_threshold_supply(self, node22):
        from repro.errors import AnalysisError

        # At 50 mV there is effectively no drive; subthreshold current
        # exists, so it should still return, just slowly - verify no
        # exception and tiny frequency instead.
        m = estimate_cmos_ring_oscillator(node22, 0.05)
        assert m.frequency_hz < 1e8
