"""Tests for the alpha-power-law compact MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cmos.mosfet import AlphaPowerMOSFET


@pytest.fixture(scope="module")
def device():
    return AlphaPowerMOSFET(
        vt_v=0.3, b_a_per_valpha=1e-3, alpha=1.3, vdsat_coeff=0.9,
        channel_length_modulation=0.15, i0_a=1e-7,
        subthreshold_ideality=1.5, cgs_f=1e-15, cgd_f=0.5e-15)


class TestRegions:
    def test_off_state_subthreshold(self, device):
        i, _, _ = device.ids(0.0, 0.8)
        # 0.3 V below threshold at SS = 90 mV/dec: ~1e-7 * 10^-3.33.
        assert 1e-12 < i < 1e-9

    def test_subthreshold_slope(self, device):
        i1, _, _ = device.ids(0.10, 0.8)
        i2, _, _ = device.ids(0.19, 0.8)
        decades = np.log10(i2 / i1)
        ss_mv = 90.0 / decades
        assert ss_mv == pytest.approx(90.0, rel=0.05)  # n * 60 mV/dec

    def test_saturation_current_alpha_law(self, device):
        i1, _, _ = device.ids(0.8, 0.8)
        i2, _, _ = device.ids(1.3, 1.3)
        expected = ((1.3 - 0.3) / (0.8 - 0.3)) ** 1.3
        assert i2 / i1 == pytest.approx(expected, rel=0.05)

    def test_triode_linear_at_small_vds(self, device):
        i1, _, _ = device.ids(0.8, 0.01)
        i2, _, _ = device.ids(0.8, 0.02)
        assert i2 / i1 == pytest.approx(2.0, rel=0.05)

    def test_continuous_at_vdsat(self, device):
        vov = 0.5
        vdsat = 0.9 * vov ** 0.65
        i_lo, _, _ = device.ids(0.8, vdsat - 1e-9)
        i_hi, _, _ = device.ids(0.8, vdsat + 1e-9)
        assert i_lo == pytest.approx(i_hi, rel=1e-6)

    def test_channel_length_modulation(self, device):
        i1, _, _ = device.ids(0.8, 0.6)
        i2, _, _ = device.ids(0.8, 1.0)
        assert i2 > i1


class TestDerivatives:
    @given(st.floats(min_value=0.0, max_value=1.2),
           st.floats(min_value=0.005, max_value=1.2))
    @settings(max_examples=40)
    def test_derivatives_match_finite_differences(self, vgs, vds):
        device = AlphaPowerMOSFET(
            vt_v=0.3, b_a_per_valpha=1e-3, alpha=1.3, vdsat_coeff=0.9,
            channel_length_modulation=0.15, i0_a=1e-7,
            subthreshold_ideality=1.5, cgs_f=1e-15, cgd_f=0.5e-15)
        vdsat = 0.9 * max(vgs - 0.3, 0.0) ** 0.65
        if abs(vds - vdsat) < 1e-3 or abs(vgs - 0.3) < 1e-3:
            return  # skip the (intentional) kink neighbourhoods
        h = 1e-6
        _, dg, dd = device.ids(vgs, vds)
        ip, _, _ = device.ids(vgs + h, vds)
        im, _, _ = device.ids(vgs - h, vds)
        assert dg == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-12)
        ip, _, _ = device.ids(vgs, vds + h)
        im, _, _ = device.ids(vgs, vds - h)
        assert dd == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-12)


class TestNegativeVds:
    def test_antisymmetry(self, device):
        i_neg, _, _ = device.ids(0.5, -0.3)
        i_mirror, _, _ = device.ids(0.8, 0.3)
        assert i_neg == pytest.approx(-i_mirror, rel=1e-12)

    def test_zero_vds_zero_current(self, device):
        i, _, _ = device.ids(0.8, 0.0)
        assert i == pytest.approx(0.0, abs=1e-12)


class TestCapacitances:
    def test_constant(self, device):
        assert device.capacitances(0.1, 0.1) == (1e-15, 0.5e-15)
        assert device.capacitances(0.9, 0.9) == (1e-15, 0.5e-15)
