"""Tests for bare and gate-screened impurity potentials."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poisson.pointcharge import (
    coulomb_potential_ev,
    screened_impurity_potential_ev,
)


class TestCoulomb:
    def test_sign_convention(self):
        """A negative impurity raises the electron energy (repels
        electrons) - the paper's barrier-raising -2q case."""
        u = coulomb_potential_ev(-1.0, np.array([1.0]), 3.9)[0]
        assert u > 0.0
        u_pos = coulomb_potential_ev(+1.0, np.array([1.0]), 3.9)[0]
        assert u_pos == pytest.approx(-u)

    def test_magnitude_1nm_sio2(self):
        """|U| = 14.4 eV/ (eps_r r[A])... at 1 nm in eps=3.9: ~0.37 eV."""
        u = abs(coulomb_potential_ev(1.0, np.array([1.0]), 3.9)[0])
        assert u == pytest.approx(1.44 / 3.9, rel=0.01)

    def test_linear_in_charge(self):
        r = np.array([0.5, 1.0, 2.0])
        u1 = coulomb_potential_ev(1.0, r, 3.9)
        u2 = coulomb_potential_ev(2.0, r, 3.9)
        assert np.allclose(u2, 2 * u1)

    def test_clip_at_minimum_distance(self):
        u0 = coulomb_potential_ev(1.0, np.array([0.0]), 3.9)
        u_min = coulomb_potential_ev(1.0, np.array([0.05]), 3.9)
        assert u0[0] == pytest.approx(u_min[0])

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            coulomb_potential_ev(1.0, np.array([1.0]), 0.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=20)
    def test_monotone_decay(self, r):
        u_near = abs(coulomb_potential_ev(1.0, np.array([r]), 3.9)[0])
        u_far = abs(coulomb_potential_ev(1.0, np.array([r * 2]), 3.9)[0])
        assert u_far <= u_near


class TestScreened:
    def test_faster_than_coulomb_decay(self):
        """Gate image charges make the lateral decay exponential; at a
        few gate separations the screened potential must be far below
        the bare Coulomb tail."""
        s = np.array([6.0])
        bare = abs(coulomb_potential_ev(-1.0, s, 3.9)[0])
        screened = abs(screened_impurity_potential_ev(
            -1.0, s, impurity_height_nm=2.0, gate_separation_nm=3.0,
            eps_r=3.9)[0])
        assert screened < bare / 50.0

    def test_exponential_decay_length(self):
        """Asymptotic decay between grounded plates goes like
        exp(-pi s / d)."""
        d = 3.0
        s = np.array([4.0, 6.0])
        u = np.abs(screened_impurity_potential_ev(
            -1.0, s, impurity_height_nm=1.8, gate_separation_nm=d,
            eps_r=3.9))
        measured = np.log(u[0] / u[1]) / (s[1] - s[0])
        assert measured == pytest.approx(np.pi / d, rel=0.15)

    def test_sign_matches_coulomb_nearby(self):
        u = screened_impurity_potential_ev(
            -2.0, np.array([0.0]), impurity_height_nm=2.0,
            gate_separation_nm=3.35, eps_r=3.9)[0]
        assert u > 0.0

    def test_zero_on_gate_plane(self):
        """The potential must vanish on the grounded gates."""
        u = screened_impurity_potential_ev(
            1.0, np.array([0.5, 2.0]), impurity_height_nm=1.5,
            gate_separation_nm=3.0, eps_r=3.9, plane_height_nm=0.0)
        assert np.max(np.abs(u)) < 2e-3

    def test_image_series_converged(self):
        kwargs = dict(charge_e=-1.0, lateral_nm=np.array([0.0, 1.0, 3.0]),
                      impurity_height_nm=2.0, gate_separation_nm=3.0,
                      eps_r=3.9)
        u_40 = screened_impurity_potential_ev(n_images=40, **kwargs)
        u_200 = screened_impurity_potential_ev(n_images=200, **kwargs)
        # The alternating image tail leaves an O(1/N) remainder of a few
        # x 1e-5 eV - far below any device-relevant scale.
        assert np.allclose(u_40, u_200, atol=5e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            screened_impurity_potential_ev(1.0, np.array([0.0]), 4.0, 3.0, 3.9)
        with pytest.raises(ValueError):
            screened_impurity_potential_ev(1.0, np.array([0.0]), 1.0, -1.0, 3.9)
        with pytest.raises(ValueError):
            screened_impurity_potential_ev(1.0, np.array([0.0]), 1.0, 3.0,
                                           3.9, n_images=0)

    def test_matches_3d_fd_solver(self):
        """Cross-validate the image series against the 3-D FD Poisson
        solver with grounded top/bottom plates."""
        from repro.poisson.fd import solve_poisson_3d
        from repro.poisson.grid import Grid3D
        from repro.constants import Q_E

        d = 3.0
        n = 41
        nz = 13
        g = Grid3D(12.0, 12.0, d, n, n, nz)
        mask = np.zeros(g.shape, bool)
        mask[:, :, 0] = mask[:, :, -1] = True
        mask[0, :, :] = mask[-1, :, :] = True
        mask[:, 0, :] = mask[:, -1, :] = True
        rho = np.zeros(g.shape)
        iz = 8  # z = 2.0 nm
        dv = (g.spacings[0] * g.spacings[1] * g.spacings[2])
        rho[20, 20, iz] = -Q_E / dv
        phi = solve_poisson_3d(g, np.full(g.shape, 3.9), rho, mask,
                               np.zeros(g.shape))
        u_fd = -phi[20:, 20, nz // 2] * -1.0  # electron energy = -phi

        s = g.x[20:] - g.x[20]
        u_img = screened_impurity_potential_ev(
            -1.0, s, impurity_height_nm=2.0, gate_separation_nm=d,
            eps_r=3.9, plane_height_nm=g.z[nz // 2])
        # Compare away from the singular cell and from the lateral walls.
        sel = (s > 1.0) & (s < 4.0)
        assert np.allclose(-phi[20:, 20, nz // 2][sel], u_img[sel],
                           rtol=0.3)
