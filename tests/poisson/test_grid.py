"""Tests for structured grids."""

import numpy as np
import pytest

from repro.poisson.grid import Grid1D, Grid2D, Grid3D


class TestGrid1D:
    def test_spacing(self):
        g = Grid1D(10.0, 11)
        assert g.spacing_nm == pytest.approx(1.0)
        assert g.coordinates[-1] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid1D(0.0, 5)
        with pytest.raises(ValueError):
            Grid1D(1.0, 1)


class TestGrid2D:
    def test_shape_and_spacings(self):
        g = Grid2D(4.0, 2.0, 5, 3)
        assert g.shape == (5, 3)
        assert g.spacings == (1.0, 1.0)

    def test_meshgrid_indexing(self):
        g = Grid2D(4.0, 2.0, 5, 3)
        xx, yy = g.meshgrid()
        assert xx.shape == (5, 3)
        assert xx[2, 0] == pytest.approx(2.0)
        assert yy[0, 2] == pytest.approx(2.0)

    def test_nearest_index_clamps(self):
        g = Grid2D(4.0, 2.0, 5, 3)
        assert g.nearest_index(1.9, 0.4) == (2, 0)
        assert g.nearest_index(99.0, -5.0) == (4, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(-1.0, 2.0, 5, 3)
        with pytest.raises(ValueError):
            Grid2D(1.0, 2.0, 1, 3)


class TestGrid3D:
    def test_axes(self):
        g = Grid3D(1.0, 2.0, 3.0, 3, 5, 7)
        assert g.shape == (3, 5, 7)
        assert g.x[-1] == pytest.approx(1.0)
        assert g.y[-1] == pytest.approx(2.0)
        assert g.z[-1] == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid3D(1, 1, 0, 3, 3, 3)
        with pytest.raises(ValueError):
            Grid3D(1, 1, 1, 3, 3, 1)
