"""Tests for the finite-difference Poisson solvers against analytics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import EPS_0_F_PER_NM
from repro.poisson.fd import solve_poisson_1d, solve_poisson_2d, solve_poisson_3d
from repro.poisson.grid import Grid1D, Grid2D, Grid3D


def _plate_bc_1d(n, v_right):
    mask = np.zeros(n, dtype=bool)
    mask[0] = mask[-1] = True
    vals = np.zeros(n)
    vals[-1] = v_right
    return mask, vals


class TestFD1D:
    def test_laplace_is_linear(self):
        g = Grid1D(10.0, 41)
        mask, vals = _plate_bc_1d(41, 1.0)
        phi = solve_poisson_1d(g, np.ones(41), np.zeros(41), mask, vals)
        assert np.allclose(phi, g.coordinates / 10.0, atol=1e-12)

    def test_uniform_charge_parabola(self):
        """Grounded plates with uniform rho: phi = rho x (L - x)/(2 eps0)."""
        g = Grid1D(8.0, 81)
        rho = np.full(81, 2e-21)
        mask, vals = _plate_bc_1d(81, 0.0)
        phi = solve_poisson_1d(g, np.ones(81), rho, mask, vals)
        x = g.coordinates
        exact = rho / (2 * EPS_0_F_PER_NM) * x * (8.0 - x)
        assert np.allclose(phi, exact, rtol=1e-10, atol=1e-12)

    def test_dielectric_interface_field_ratio(self):
        """Across an interface eps1/eps2, the E-field ratio is eps2/eps1
        (continuity of displacement)."""
        g = Grid1D(10.0, 101)
        eps = np.ones(101)
        eps[:50] = 3.9
        mask, vals = _plate_bc_1d(101, 1.0)
        phi = solve_poisson_1d(g, eps, np.zeros(101), mask, vals)
        e1 = phi[10] - phi[9]
        e2 = phi[90] - phi[89]
        assert e2 / e1 == pytest.approx(3.9, rel=1e-6)

    def test_neumann_default_floating_boundary(self):
        """With only one Dirichlet node, zero charge -> constant phi."""
        g = Grid1D(5.0, 21)
        mask = np.zeros(21, dtype=bool)
        mask[0] = True
        vals = np.zeros(21)
        vals[0] = 0.7
        phi = solve_poisson_1d(g, np.ones(21), np.zeros(21), mask, vals)
        assert np.allclose(phi, 0.7, atol=1e-10)

    def test_requires_dirichlet(self):
        g = Grid1D(5.0, 11)
        with pytest.raises(ValueError):
            solve_poisson_1d(g, np.ones(11), np.zeros(11),
                             np.zeros(11, bool), np.zeros(11))

    def test_rejects_nonpositive_eps(self):
        g = Grid1D(5.0, 11)
        mask, vals = _plate_bc_1d(11, 1.0)
        with pytest.raises(ValueError):
            solve_poisson_1d(g, np.zeros(11), np.zeros(11), mask, vals)

    def test_superposition(self):
        """The solver is linear: phi(rho1 + rho2) = phi(rho1) + phi(rho2)
        (with zero Dirichlet)."""
        g = Grid1D(6.0, 31)
        rng = np.random.default_rng(0)
        rho1 = rng.normal(scale=1e-21, size=31)
        rho2 = rng.normal(scale=1e-21, size=31)
        mask, vals = _plate_bc_1d(31, 0.0)
        eps = np.ones(31)
        p1 = solve_poisson_1d(g, eps, rho1, mask, vals)
        p2 = solve_poisson_1d(g, eps, rho2, mask, vals)
        p12 = solve_poisson_1d(g, eps, rho1 + rho2, mask, vals)
        assert np.allclose(p12, p1 + p2, atol=1e-12)


class TestFD2D:
    def test_laplace_linear_in_y(self):
        g = Grid2D(4.0, 2.0, 17, 9)
        eps = np.ones(g.shape)
        rho = np.zeros(g.shape)
        mask = np.zeros(g.shape, bool)
        mask[:, 0] = mask[:, -1] = True
        vals = np.zeros(g.shape)
        vals[:, -1] = 0.5
        phi = solve_poisson_2d(g, eps, rho, mask, vals)
        _, yy = g.meshgrid()
        assert np.allclose(phi, 0.5 * yy / 2.0, atol=1e-12)

    def test_separable_laplace_solution(self):
        """phi = sinh(pi y / L) sin(pi x / L) is harmonic; imposing it on
        the full boundary must reproduce it in the interior."""
        g = Grid2D(1.0, 1.0, 41, 41)
        xx, yy = g.meshgrid()
        exact = np.sin(np.pi * xx) * np.sinh(np.pi * yy) / np.sinh(np.pi)
        mask = np.zeros(g.shape, bool)
        mask[0, :] = mask[-1, :] = mask[:, 0] = mask[:, -1] = True
        vals = np.where(mask, exact, 0.0)
        phi = solve_poisson_2d(g, np.ones(g.shape), np.zeros(g.shape),
                               mask, vals)
        assert np.max(np.abs(phi - exact)) < 2e-3

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_discrete_maximum_principle(self, seed):
        """Zero charge: the interior solution is bounded by the boundary
        values (no spurious extrema)."""
        rng = np.random.default_rng(seed)
        g = Grid2D(3.0, 2.0, 13, 11)
        mask = np.zeros(g.shape, bool)
        mask[0, :] = mask[-1, :] = mask[:, 0] = mask[:, -1] = True
        vals = np.where(mask, rng.uniform(-1, 1, g.shape), 0.0)
        eps = rng.uniform(1.0, 10.0, g.shape)
        phi = solve_poisson_2d(g, eps, np.zeros(g.shape), mask, vals)
        assert phi.max() <= vals[mask].max() + 1e-9
        assert phi.min() >= vals[mask].min() - 1e-9

    def test_positive_charge_raises_potential(self):
        g = Grid2D(2.0, 2.0, 21, 21)
        mask = np.zeros(g.shape, bool)
        mask[0, :] = mask[-1, :] = mask[:, 0] = mask[:, -1] = True
        rho = np.zeros(g.shape)
        rho[10, 10] = 1e-21
        phi = solve_poisson_2d(g, np.ones(g.shape), rho, mask,
                               np.zeros(g.shape))
        assert phi[10, 10] > 0.0
        assert phi[10, 10] == phi.max()


class TestFD3D:
    def test_laplace_linear_in_z(self):
        g = Grid3D(2.0, 2.0, 3.0, 7, 7, 13)
        eps = np.ones(g.shape)
        rho = np.zeros(g.shape)
        mask = np.zeros(g.shape, bool)
        mask[:, :, 0] = mask[:, :, -1] = True
        vals = np.zeros(g.shape)
        vals[:, :, -1] = 1.2
        phi = solve_poisson_3d(g, eps, rho, mask, vals)
        z = g.z
        expected = 1.2 * z / 3.0
        assert np.allclose(phi, expected[None, None, :], atol=1e-10)

    def test_point_charge_spherical_decay(self):
        """Far from boundaries, a point charge's potential falls like
        1/r (checked via ratio at two radii along an axis)."""
        g = Grid3D(8.0, 8.0, 8.0, 33, 33, 33)
        mask = np.zeros(g.shape, bool)
        mask[0], mask[-1] = True, True
        mask[:, 0], mask[:, -1] = True, True
        mask[:, :, 0], mask[:, :, -1] = True, True
        rho = np.zeros(g.shape)
        rho[16, 16, 16] = 1e-20
        phi = solve_poisson_3d(g, np.ones(g.shape), rho, mask,
                               np.zeros(g.shape))
        # r = 2 grid cells vs r = 4 grid cells along +x.
        ratio = phi[18, 16, 16] / phi[20, 16, 16]
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_shape_validation(self):
        g = Grid3D(1, 1, 1, 4, 4, 4)
        with pytest.raises(ValueError):
            solve_poisson_3d(g, np.ones((4, 4)), np.zeros(g.shape),
                             np.zeros(g.shape, bool), np.zeros(g.shape))
