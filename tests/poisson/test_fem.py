"""Tests for the P1 FEM solver, including FD cross-validation."""

import numpy as np
import pytest

from repro.constants import EPS_0_F_PER_NM
from repro.poisson.fd import solve_poisson_2d
from repro.poisson.fem import solve_poisson_fem_2d
from repro.poisson.grid import Grid2D
from repro.poisson.mesh import rectangle_mesh


def _bottom_top_dirichlet(mesh, ly, v_top):
    y = mesh.nodes[:, 1]
    nodes = np.where((y < 1e-12) | (y > ly - 1e-12))[0]
    values = np.where(mesh.nodes[nodes, 1] > ly / 2, v_top, 0.0)
    return nodes, values


class TestFEM:
    def test_laplace_linear(self):
        mesh = rectangle_mesh(4.0, 2.0, 17, 9)
        nodes, values = _bottom_top_dirichlet(mesh, 2.0, 1.0)
        phi = solve_poisson_fem_2d(mesh, np.ones(mesh.n_triangles),
                                   np.zeros(mesh.n_nodes), nodes, values)
        assert np.allclose(phi, mesh.nodes[:, 1] / 2.0, atol=1e-12)

    def test_uniform_charge_parabola(self):
        """1-D-like problem (uniform in x): parabolic profile in y."""
        mesh = rectangle_mesh(2.0, 6.0, 9, 61)
        rho_val = 1e-21
        nodes, values = _bottom_top_dirichlet(mesh, 6.0, 0.0)
        phi = solve_poisson_fem_2d(mesh, np.ones(mesh.n_triangles),
                                   np.full(mesh.n_nodes, rho_val),
                                   nodes, values)
        y = mesh.nodes[:, 1]
        exact = rho_val / (2 * EPS_0_F_PER_NM) * y * (6.0 - y)
        assert np.max(np.abs(phi - exact)) < 2e-3 * exact.max()

    def test_matches_fd_on_same_problem(self):
        """FEM and FD must agree on a smooth mixed problem (this is the
        validation of the paper's-FEM-to-our-FD substitution)."""
        nx, ny = 25, 17
        lx, ly = 5.0, 3.0
        grid = Grid2D(lx, ly, nx, ny)
        mesh = rectangle_mesh(lx, ly, nx, ny)

        xx, yy = grid.meshgrid()
        rho_grid = 1e-21 * np.exp(-((xx - 2.5) ** 2 + (yy - 1.5) ** 2))
        eps_grid = np.where(yy < 1.5, 3.9, 1.0)

        mask = np.zeros(grid.shape, bool)
        mask[:, 0] = mask[:, -1] = True
        vals = np.zeros(grid.shape)
        vals[:, -1] = 0.4
        phi_fd = solve_poisson_2d(grid, eps_grid, rho_grid, mask, vals)

        # Same data on the mesh (nodes enumerate x-major like the grid).
        rho_nodes = rho_grid.ravel()
        y_nodes = mesh.nodes[:, 1]
        centroids = mesh.element_centroids()
        eps_elems = np.where(centroids[:, 1] < 1.5, 3.9, 1.0)
        d_nodes = np.where((y_nodes < 1e-12) | (y_nodes > ly - 1e-12))[0]
        d_vals = np.where(y_nodes[d_nodes] > ly / 2, 0.4, 0.0)
        phi_fem = solve_poisson_fem_2d(mesh, eps_elems, rho_nodes,
                                       d_nodes, d_vals)

        # The two discretizations treat the dielectric interface
        # differently (node-harmonic vs element-constant permittivity),
        # so agreement is to within a few percent of the scale.
        diff = np.abs(phi_fem - phi_fd.ravel())
        assert diff.max() < 0.05 * max(np.abs(phi_fd).max(), 1e-12)

    def test_validation_errors(self):
        mesh = rectangle_mesh(1.0, 1.0, 3, 3)
        ok_eps = np.ones(mesh.n_triangles)
        ok_rho = np.zeros(mesh.n_nodes)
        with pytest.raises(ValueError):
            solve_poisson_fem_2d(mesh, ok_eps[:-1], ok_rho,
                                 np.array([0]), np.array([0.0]))
        with pytest.raises(ValueError):
            solve_poisson_fem_2d(mesh, ok_eps, ok_rho[:-1],
                                 np.array([0]), np.array([0.0]))
        with pytest.raises(ValueError):
            solve_poisson_fem_2d(mesh, ok_eps, ok_rho,
                                 np.array([], dtype=int), np.array([]))
        with pytest.raises(ValueError):
            solve_poisson_fem_2d(mesh, 0.0 * ok_eps, ok_rho,
                                 np.array([0]), np.array([0.0]))
