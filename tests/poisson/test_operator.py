"""PoissonOperator: prefactorized solves must match one-shot references.

The operator is the tentpole of the solver-acceleration layer: assembly
and LU factorization happen once per (grid, permittivity, Dirichlet
mask), and every SCF iteration of every bias point reuses them.  These
tests pin (a) agreement with an independent row-replacement spsolve
reference in all dimensionalities, (b) exact agreement between a reused
operator and the one-shot wrapper functions, (c) input validation, and
(d) the observability counters.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.constants import EPS_0_F_PER_NM
from repro.poisson.fd import (
    PoissonOperator,
    _assemble_matrix,
    solve_poisson_1d,
    solve_poisson_2d,
    solve_poisson_3d,
)
from repro.poisson.grid import Grid1D, Grid2D, Grid3D


def _reference_solve(shape, spacings, eps_r, rho, mask, values):
    """Independent reference: row-replacement Dirichlet + direct spsolve."""
    a, volume = _assemble_matrix(shape, spacings, eps_r)
    b = rho.ravel() * volume / EPS_0_F_PER_NM
    a = a.tolil()
    flat_mask = mask.ravel()
    flat_values = values.ravel()
    for i in np.flatnonzero(flat_mask):
        a.rows[i] = [i]
        a.data[i] = [1.0]
        b[i] = flat_values[i]
    phi = spla.spsolve(sp.csr_matrix(a), b)
    return phi.reshape(shape)


def _random_problem(rng, shape):
    eps = rng.uniform(1.0, 8.0, size=shape)
    rho = rng.normal(scale=1e-21, size=shape)
    mask = np.zeros(shape, dtype=bool)
    # Pin one full face plus a scattering of interior nodes (mixed BC).
    mask[(0,) + (slice(None),) * (len(shape) - 1)] = True
    mask |= rng.random(size=shape) < 0.1
    values = np.where(mask, rng.uniform(-1.0, 1.0, size=shape), 0.0)
    return eps, rho, mask, values


class TestMatchesDirectSolve:
    @pytest.mark.parametrize("grid", [
        Grid1D(8.0, 41),
        Grid2D(6.0, 3.0, 25, 13),
        Grid3D(4.0, 3.0, 2.0, 9, 7, 5),
    ], ids=["1d", "2d", "3d"])
    def test_mixed_boundary_conditions(self, grid):
        rng = np.random.default_rng(len(grid.shape))
        eps, rho, mask, values = _random_problem(rng, grid.shape)
        op = PoissonOperator.for_grid(grid, eps, mask)
        phi = op.solve(rho, values)
        ref = _reference_solve(grid.shape, grid.spacings, eps, rho,
                               mask, values)
        assert np.allclose(phi, ref, rtol=1e-10, atol=1e-12)
        # Dirichlet nodes are reproduced exactly, not to solver accuracy.
        assert np.array_equal(phi[mask], values[mask])

    def test_reuse_matches_one_shot_wrappers(self):
        """One factorization, many right-hand sides: bit-identical to
        assembling from scratch for every solve."""
        grid = Grid2D(5.0, 2.5, 21, 11)
        rng = np.random.default_rng(7)
        eps = rng.uniform(1.0, 4.0, size=grid.shape)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[0, :] = mask[-1, :] = True
        op = PoissonOperator.for_grid(grid, eps, mask)
        for k in range(4):
            rho = rng.normal(scale=1e-21, size=grid.shape)
            values = np.zeros(grid.shape)
            values[-1, :] = 0.1 * k
            assert np.array_equal(
                op.solve(rho, values),
                solve_poisson_2d(grid, eps, rho, mask, values))

    def test_wrappers_cover_all_dimensionalities(self):
        rng = np.random.default_rng(3)
        for grid, solver in ((Grid1D(4.0, 17), solve_poisson_1d),
                             (Grid2D(4.0, 2.0, 9, 7), solve_poisson_2d),
                             (Grid3D(2.0, 2.0, 2.0, 5, 5, 5),
                              solve_poisson_3d)):
            eps, rho, mask, values = _random_problem(rng, grid.shape)
            got = solver(grid, eps, rho, mask, values)
            ref = _reference_solve(grid.shape, grid.spacings, eps, rho,
                                   mask, values)
            assert np.allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_all_dirichlet_grid(self):
        """Every node pinned: the solve degenerates to a copy."""
        grid = Grid1D(1.0, 5)
        mask = np.ones(5, dtype=bool)
        values = np.linspace(0.0, 1.0, 5)
        op = PoissonOperator.for_grid(grid, np.ones(5), mask)
        assert np.array_equal(op.solve(np.zeros(5), values), values)


class TestValidation:
    def test_shape_mismatches_rejected(self):
        grid = Grid1D(1.0, 5)
        mask = np.zeros(5, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError, match="eps_r"):
            PoissonOperator.for_grid(grid, np.ones(4), mask)
        with pytest.raises(ValueError, match="dirichlet_mask"):
            PoissonOperator.for_grid(grid, np.ones(5),
                                     np.zeros(4, dtype=bool))
        op = PoissonOperator.for_grid(grid, np.ones(5), mask)
        with pytest.raises(ValueError, match="rho"):
            op.solve(np.zeros(4), np.zeros(5))
        with pytest.raises(ValueError, match="dirichlet_values"):
            op.solve(np.zeros(5), np.zeros(4))

    def test_nonpositive_permittivity_rejected(self):
        grid = Grid1D(1.0, 5)
        mask = np.zeros(5, dtype=bool)
        mask[0] = True
        eps = np.ones(5)
        eps[2] = 0.0
        with pytest.raises(ValueError, match="permittivity"):
            PoissonOperator.for_grid(grid, eps, mask)

    def test_requires_a_dirichlet_node(self):
        grid = Grid1D(1.0, 5)
        with pytest.raises(ValueError, match="Dirichlet"):
            PoissonOperator.for_grid(grid, np.ones(5),
                                     np.zeros(5, dtype=bool))


class TestObservability:
    @pytest.fixture()
    def traced(self, monkeypatch):
        monkeypatch.setattr(obs, "ACTIVE", True)
        obs.reset()
        yield
        obs.reset()

    def test_factor_counters(self, traced):
        grid = Grid1D(2.0, 9)
        mask = np.zeros(9, dtype=bool)
        mask[0] = mask[-1] = True
        op = PoissonOperator.for_grid(grid, np.ones(9), mask)
        for _ in range(3):
            op.solve(np.zeros(9), np.zeros(9))
        counters = obs.snapshot()["counters"]
        assert counters["poisson.factor_builds"] == 1
        assert counters["poisson.factor_solves"] == 3
