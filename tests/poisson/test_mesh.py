"""Tests for triangle-mesh construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poisson.mesh import TriangleMesh, rectangle_mesh


class TestRectangleMesh:
    def test_counts(self):
        mesh = rectangle_mesh(2.0, 1.0, 5, 3)
        assert mesh.n_nodes == 15
        assert mesh.n_triangles == 2 * 4 * 2

    def test_total_area(self):
        mesh = rectangle_mesh(3.0, 2.0, 7, 5)
        assert mesh.element_areas().sum() == pytest.approx(6.0)

    def test_no_degenerate_elements(self):
        mesh = rectangle_mesh(1.0, 1.0, 9, 9)
        assert np.all(mesh.element_areas() > 0.0)

    def test_boundary_nodes(self):
        mesh = rectangle_mesh(1.0, 1.0, 4, 4)
        boundary = mesh.boundary_nodes()
        # Perimeter of a 4x4 node grid: 4*4 - 2*2 interior = 12.
        assert boundary.size == 12
        for b in boundary:
            x, y = mesh.nodes[b]
            on_edge = (abs(x) < 1e-12 or abs(x - 1) < 1e-12
                       or abs(y) < 1e-12 or abs(y - 1) < 1e-12)
            assert on_edge

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=15)
    def test_area_invariant(self, nx, ny):
        mesh = rectangle_mesh(2.5, 1.5, nx, ny)
        assert mesh.element_areas().sum() == pytest.approx(2.5 * 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            rectangle_mesh(1.0, 1.0, 1, 3)
        with pytest.raises(ValueError):
            rectangle_mesh(-1.0, 1.0, 3, 3)


class TestTriangleMesh:
    def test_rejects_bad_indices(self):
        nodes = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            TriangleMesh(nodes=nodes, triangles=np.array([[0, 1, 3]]))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TriangleMesh(nodes=np.zeros((3, 3)),
                         triangles=np.array([[0, 1, 2]]))

    def test_centroids(self):
        nodes = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]])
        mesh = TriangleMesh(nodes=nodes, triangles=np.array([[0, 1, 2]]))
        assert np.allclose(mesh.element_centroids(), [[1.0, 1.0]])
